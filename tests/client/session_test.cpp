/// \file session_test.cpp
/// \brief Client session API: the four consistency levels against
///        map-based oracles, migration-window routing, freshness hints
///        and async op handles.
///
/// The oracle assertions are the acceptance criteria of the session
/// redesign:
///  * Strong reads match the coordinator replica byte-exactly;
///  * BoundedStaleness never serves a view beyond its declared bound
///    (checked independently against the coordinator at serve time);
///  * Quorum(majority) never returns a view older than any acked write
///    (every acked update is present in the merged view);
///  * EventualNearest serves the latency-model-nearest replica.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "client/session.hpp"
#include "shard/sharded_cluster.hpp"

namespace idea::client {
namespace {

shard::ShardedClusterConfig session_config(std::uint64_t seed,
                                           SimDuration anti_entropy = 0) {
  shard::ShardedClusterConfig cfg;
  cfg.endpoints = 6;
  cfg.replication = 3;
  cfg.seed = seed;
  cfg.sync_sizes();
  cfg.idea.maxima = vv::TripleMaxima{50, 50, 50};
  // On-demand mode, no hint: resolution never blocks writes, so acked
  // writes are exactly the issued writes and the oracles stay simple.
  cfg.idea.controller.mode = core::AdaptiveMode::kOnDemand;
  cfg.idea.controller.hint = 0.0;
  cfg.anti_entropy_period = anti_entropy;
  return cfg;
}

/// Independent staleness oracle: versions the `endpoint` replica of
/// `file` is missing relative to the coordinator, right now.
std::uint64_t versions_behind(shard::ShardedCluster& cluster, FileId file,
                              NodeId endpoint) {
  core::IdeaNode* coordinator = cluster.replica_at_rank(file, 0);
  core::IdeaNode* node = cluster.replica(file, endpoint);
  if (coordinator == nullptr || node == nullptr) return 0;
  return coordinator->store()
      .updates_ahead_of(node->store().evv().counts())
      .size();
}

TEST(ClientSessionTest, StrongMatchesCoordinatorByteExactly) {
  shard::ShardedCluster cluster(session_config(101));
  Client client(cluster);
  ClientSession session = client.session();  // default: Strong

  const FileId file = 7;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(session.put(file, "w" + std::to_string(i), 1.0).ok());
  }
  cluster.run_for(sec(2));

  const OpHandle<ReadResult> handle = session.read(file);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(handle->served_by, cluster.coordinator_endpoint(file));
  EXPECT_EQ(handle->staleness_versions, 0u);
  EXPECT_FALSE(handle->escalated);

  // Byte-exact: the served view IS the coordinator's canonical read.
  core::IdeaNode* coordinator = cluster.replica_at_rank(file, 0);
  const std::vector<replica::Update> expected = coordinator->read();
  ASSERT_EQ(handle->updates->size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*handle->updates)[i].key, expected[i].key);
    EXPECT_EQ((*handle->updates)[i].content, expected[i].content);
    EXPECT_EQ((*handle->updates)[i].stamp, expected[i].stamp);
  }
  // Zero-copy: a repeated strong read shares the same snapshot.
  const OpHandle<ReadResult> again = session.read(file);
  EXPECT_EQ(again->updates.get(), handle->updates.get());
}

TEST(ClientSessionTest, EventualNearestServesNearestReplica) {
  shard::ShardedCluster cluster(session_config(202));
  Client client(cluster);

  const FileId file = 3;
  ClientSession writer = client.session();
  ASSERT_TRUE(writer.put(file, "seed", 1.0).ok());
  cluster.run_for(sec(2));

  const std::vector<NodeId> group = cluster.group_of(file);
  ASSERT_EQ(group.size(), 3u);
  // Read from every endpoint's perspective: the serving replica must be
  // the group member with the smallest mean round trip from the origin.
  for (NodeId origin = 0; origin < cluster.size(); ++origin) {
    ClientSession reader = client.session(
        {.level = ConsistencyLevel::eventual_nearest(), .origin = origin});
    const OpHandle<ReadResult> handle = reader.read(file);
    ASSERT_TRUE(handle.ok());
    NodeId nearest = group.front();
    for (NodeId member : group) {
      if (cluster.latency().mean(origin, member) <
          cluster.latency().mean(origin, nearest)) {
        nearest = member;
      }
    }
    EXPECT_EQ(handle->served_by, nearest) << "origin " << origin;
    EXPECT_EQ(handle->latency,
              2 * cluster.latency().mean(origin, nearest));
    // Reported staleness matches the oracle at serve time.
    EXPECT_EQ(handle->staleness_versions,
              versions_behind(cluster, file, nearest));
  }
}

TEST(ClientSessionTest, BoundedStalenessNeverExceedsDeclaredBound) {
  shard::ShardedCluster cluster(session_config(303));
  Client client(cluster);

  const FileId file = 5;
  ClientSession writer = client.session();
  ASSERT_TRUE(writer.put(file, "warm", 0.5).ok());
  cluster.run_for(sec(1));

  // Cut the coordinator off from both other replicas: pushes for the
  // next writes drop, so the non-coordinator replicas fall behind by
  // exactly the writes issued during the partition.
  const std::vector<NodeId> group = cluster.group_of(file);
  ASSERT_EQ(group.size(), 3u);
  cluster.transport().partition(group[0], group[1]);
  cluster.transport().partition(group[0], group[2]);
  constexpr int kStaleWrites = 10;
  for (int i = 0; i < kStaleWrites; ++i) {
    ASSERT_TRUE(writer.put(file, "s" + std::to_string(i), 1.0).ok());
  }
  cluster.run_for(sec(1));
  ASSERT_EQ(versions_behind(cluster, file, group[1]),
            static_cast<std::uint64_t>(kStaleWrites));

  // A session attached at a lagging replica, tight bound: the replica is
  // 10 versions behind > 3, so the read must escalate to the coordinator.
  ClientSession tight = client.session(
      {.level = ConsistencyLevel::bounded_staleness(3), .origin = group[1]});
  const OpHandle<ReadResult> escalated = tight.read(file);
  ASSERT_TRUE(escalated.ok());
  EXPECT_TRUE(escalated->escalated);
  EXPECT_EQ(escalated->served_by, group[0]);
  EXPECT_EQ(escalated->staleness_versions, 0u);
  EXPECT_EQ(tight.stats().escalated_reads, 1u);

  // A loose bound serves the lagging replica and reports its staleness.
  ClientSession loose = client.session(
      {.level = ConsistencyLevel::bounded_staleness(20), .origin = group[1]});
  const OpHandle<ReadResult> served = loose.read(file);
  ASSERT_TRUE(served.ok());
  EXPECT_FALSE(served->escalated);
  EXPECT_EQ(served->served_by, group[1]);
  EXPECT_EQ(served->staleness_versions,
            static_cast<std::uint64_t>(kStaleWrites));

  // The oracle sweep: whatever the bound, a non-escalated read's served
  // view must be within it (checked against the coordinator directly).
  cluster.transport().heal_all_partitions();
  for (std::uint64_t bound : {0u, 1u, 5u, 10u, 50u}) {
    ClientSession s = client.session(
        {.level = ConsistencyLevel::bounded_staleness(bound),
         .origin = group[2]});
    const OpHandle<ReadResult> h = s.read(file);
    ASSERT_TRUE(h.ok());
    if (!h->escalated) {
      EXPECT_LE(versions_behind(cluster, file, h->served_by), bound)
          << "bound " << bound;
      EXPECT_LE(h->staleness_versions, bound);
    } else {
      EXPECT_EQ(h->served_by, group[0]);
    }
  }
}

TEST(ClientSessionTest, QuorumMajorityNeverOlderThanAckedWrite) {
  shard::ShardedCluster cluster(session_config(404));
  Client client(cluster);

  const FileId file = 9;
  ClientSession writer = client.session();
  ClientSession reader =
      client.session({.level = ConsistencyLevel::quorum(), .origin = 2});

  // Map-based oracle: every acked write's content.  Lossy windows drop
  // replication pushes, so non-coordinator replicas lag arbitrarily —
  // but a majority quorum includes the write quorum (the coordinator),
  // so the merged view must contain every acked update at all times.
  std::set<std::string> acked;
  cluster.transport().add_drop_window(msec(500), sec(2));
  for (int i = 0; i < 20; ++i) {
    const std::string content = "q" + std::to_string(i);
    if (writer.put(file, content, 1.0).ok()) acked.insert(content);
    cluster.run_for(msec(200));

    const OpHandle<ReadResult> h = reader.read(file);
    ASSERT_TRUE(h.ok());
    EXPECT_GE(h->replicas_contacted, 2u);  // majority of 3
    EXPECT_EQ(h->staleness_versions, 0u);  // merge covers the coordinator
    std::set<std::string> seen;
    for (const replica::Update& u : *h->updates) seen.insert(u.content);
    for (const std::string& content : acked) {
      EXPECT_TRUE(seen.count(content) > 0)
          << "acked write \"" << content << "\" missing from quorum view";
    }
  }
  EXPECT_GT(cluster.router().stats().quorum_reads, 0u);
}

TEST(ClientSessionTest, QuorumMergesInvalidationFlagsFromAnyReplica) {
  // Version counts cannot express invalidation (the update stays in the
  // log), so the quorum merge must not trust count dominance alone: a
  // contacted replica may know an update was invalidated while the
  // coordinator's copy is still live — the divergence anti-entropy
  // repair exists to heal.  The merged view must carry the flag.
  shard::ShardedCluster cluster(session_config(909));
  Client client(cluster);
  ClientSession writer = client.session();

  const FileId file = 8;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(writer.put(file, "v" + std::to_string(i), 1.0).ok());
  }
  cluster.run_for(sec(1));  // pushes deliver; counts equal everywhere

  // Mimic a resolution outcome whose invalidate message reached only a
  // non-coordinator replica.
  const std::vector<NodeId> group = cluster.group_of(file);
  ASSERT_EQ(group.size(), 3u);
  core::IdeaNode* lagging = cluster.replica(file, group[1]);
  ASSERT_TRUE(lagging->store().invalidate(replica::UpdateKey{0, 2}));

  // A full-group quorum contacts the flagged replica; the returned view
  // must show the update invalidated even though the coordinator's
  // counts dominate (equal) and its own copy is live.
  ClientSession reader =
      client.session({.level = ConsistencyLevel::quorum(3), .origin = 0});
  const OpHandle<ReadResult> h = reader.read(file);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->replicas_contacted, 3u);
  bool found = false;
  for (const replica::Update& u : *h->updates) {
    if (u.key == replica::UpdateKey{0, 2}) {
      found = true;
      EXPECT_TRUE(u.invalidated)
          << "quorum view dropped a contacted replica's invalidation";
    }
  }
  EXPECT_TRUE(found);
}

TEST(ClientSessionTest, MigrationWindowPinsPolicyReadsToWarmCoordinator) {
  shard::ShardedCluster cluster(session_config(505));
  Client client(cluster);
  ClientSession writer = client.session();

  constexpr FileId kFiles = 40;
  cluster.place(1, kFiles);
  for (FileId f = 1; f <= kFiles; ++f) {
    ASSERT_TRUE(writer.put(f, "pre-" + std::to_string(f), 1.0).ok());
  }
  cluster.run_for(sec(3));

  const shard::MembershipChange joined = cluster.add_endpoint();
  ASSERT_GT(joined.files_migrated, 0u);

  // Pick a migrated file still inside its stream window: policy reads
  // pin to the (already warm) new coordinator instead of risking a cold
  // nearest replica.
  FileId migrated = 0;
  for (FileId f = 1; f <= kFiles; ++f) {
    if (cluster.router().in_migration_window(f)) {
      migrated = f;
      break;
    }
  }
  ASSERT_NE(migrated, 0u) << "no file in a migration window after join";

  const NodeId coordinator = cluster.coordinator_endpoint(migrated);
  for (NodeId origin = 0; origin < 3; ++origin) {
    ClientSession nearest = client.session(
        {.level = ConsistencyLevel::eventual_nearest(), .origin = origin});
    const OpHandle<ReadResult> h = nearest.read(migrated);
    ASSERT_TRUE(h.ok());
    EXPECT_TRUE(h->migration_window);
    EXPECT_EQ(h->served_by, coordinator);
    EXPECT_EQ(h->staleness_versions, 0u);
  }
  EXPECT_GT(cluster.router().stats().migration_window_reads, 0u);

  // Once the stream horizon passes, routing falls back to the policy.
  cluster.run_for(sec(2));
  EXPECT_FALSE(cluster.router().in_migration_window(migrated));
  ClientSession after = client.session(
      {.level = ConsistencyLevel::eventual_nearest(), .origin = 0});
  const OpHandle<ReadResult> h = after.read(migrated);
  ASSERT_TRUE(h.ok());
  EXPECT_FALSE(h->migration_window);
}

TEST(ClientSessionTest, FreshnessHintsPiggybackOnAntiEntropy) {
  shard::ShardedCluster cluster(
      session_config(606, /*anti_entropy=*/msec(500)));
  Client client(cluster);
  ClientSession session = client.session();

  const FileId file = 4;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(session.put(file, "h" + std::to_string(i), 1.0).ok());
  }
  cluster.run_for(sec(3));  // several digest/repair rounds

  const shard::RequestRouter& router = cluster.router();
  EXPECT_GT(router.stats().freshness_hints, 0u);
  const std::vector<NodeId> group = cluster.group_of(file);
  // At least one non-coordinator replica must have been hinted at its
  // full version count by now (the group converged).
  bool hinted = false;
  for (std::size_t rank = 1; rank < group.size(); ++rank) {
    if (router.freshness_hint(file, group[rank]) == 6u) hinted = true;
  }
  EXPECT_TRUE(hinted);
}

TEST(ClientSessionTest, OpHandlesCompleteOnTheSimulatorClock) {
  shard::ShardedCluster cluster(session_config(707));
  Client client(cluster);
  ClientSession session = client.session({.origin = 2});

  const FileId file = 6;
  const OpHandle<WriteAck> put = session.put(file, "async", 1.0);
  ASSERT_TRUE(put.ok());
  EXPECT_TRUE(put->applied);
  EXPECT_GT(put.latency(), 0);
  EXPECT_FALSE(put.done()) << "completion should follow the round trip";

  bool fired = false;
  SimTime fired_at = 0;
  put.on_complete([&](const OpHandle<WriteAck>& h) {
    fired = true;
    fired_at = cluster.sim().now();
    EXPECT_TRUE(h->applied);
  });
  cluster.run_for(put.latency());
  EXPECT_TRUE(put.done());
  EXPECT_TRUE(fired);
  EXPECT_EQ(fired_at, put.ready_at());

  // A read handle carries the routed latency; a callback attached after
  // completion runs synchronously.
  const OpHandle<ReadResult> read = session.read(file);
  ASSERT_TRUE(read.ok());
  cluster.run_for(read.latency());
  bool immediate = false;
  read.on_complete([&](const OpHandle<ReadResult>&) { immediate = true; });
  EXPECT_TRUE(immediate);
}

TEST(ClientSessionTest, FreshnessHintsDecayOnTheSimClock) {
  // Regression (hints never decayed): a stale hint claiming a replica is
  // far behind used to suppress that replica from bounded-staleness
  // selection forever, even long after it caught up.  Hints now age out
  // on the sim clock (config.freshness_hint_ttl), after which selection
  // falls back to latency and the exact serve-time bound check.
  shard::ShardedClusterConfig cfg = session_config(1001);
  cfg.freshness_hint_ttl = sec(2);
  shard::ShardedCluster cluster(cfg);
  Client client(cluster);
  ClientSession writer = client.session();

  const FileId file = 7;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(writer.put(file, "d" + std::to_string(i), 1.0).ok());
  }
  cluster.run_for(sec(1));  // pushes deliver: the whole group is in sync

  // Find an origin whose latency-nearest group member is a
  // non-coordinator replica — the one a bounded read would serve absent
  // any hints.
  const std::vector<NodeId> group = cluster.group_of(file);
  ASSERT_EQ(group.size(), 3u);
  NodeId origin = kNoNode;
  NodeId nearest = kNoNode;
  for (NodeId o = 0; o < cluster.size() && origin == kNoNode; ++o) {
    NodeId best = group[0];
    for (NodeId m : group) {
      if (cluster.latency().mean(o, m) < cluster.latency().mean(o, best)) {
        best = m;
      }
    }
    if (best != group[0]) {
      origin = o;
      nearest = best;
    }
  }
  ASSERT_NE(origin, kNoNode) << "no origin prefers a non-coordinator";

  // A stale observation: `nearest` once looked 9 versions behind.  It
  // has long since caught up, but the hint is all the router knows.
  shard::RequestRouter& router = cluster.router();
  router.note_freshness(file, nearest, 1, cluster.sim().now());
  EXPECT_EQ(router.freshness_hint(file, nearest), 1u);

  ClientSession before = client.session(
      {.level = ConsistencyLevel::bounded_staleness(50), .origin = origin});
  const OpHandle<ReadResult> suppressed = before.read(file);
  ASSERT_TRUE(suppressed.ok());
  EXPECT_NE(suppressed->served_by, nearest)
      << "a 9-behind hint should lose selection to unhinted replicas";

  // Past the decay horizon the hint stops informing selection: the read
  // goes back to the nearest replica, and the hint reads as absent.
  cluster.run_for(sec(3));
  EXPECT_EQ(router.freshness_hint(file, nearest), 0u);
  ClientSession after = client.session(
      {.level = ConsistencyLevel::bounded_staleness(50), .origin = origin});
  const OpHandle<ReadResult> restored = after.read(file);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->served_by, nearest);
  EXPECT_EQ(restored->staleness_versions, 0u);

  // An expired entry no longer keep-maxes: the next honest observation
  // lands even if it reports fewer versions than the decayed one.
  router.note_freshness(file, nearest, 3, cluster.sim().now());
  EXPECT_EQ(router.freshness_hint(file, nearest), 3u);
  EXPECT_GT(router.stats().expired_hints, 0u);
}

TEST(ClientSessionTest, CrashPurgesHintsForTheDeadIncarnation) {
  // Regression (stale hints survived crash/restart): a pre-crash hint
  // describes volatile state that no longer exists, and keep-max let it
  // outrank every honest post-restart observation (version counts are
  // only monotone within an incarnation).  crash_endpoint() now purges
  // the endpoint's hints across all files.
  shard::ShardedCluster cluster(
      session_config(1102, /*anti_entropy=*/msec(500)));
  Client client(cluster);
  ClientSession writer = client.session();

  const FileId file = 4;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(writer.put(file, "c" + std::to_string(i), 1.0).ok());
  }
  cluster.run_for(sec(3));  // digest rounds hint the peers fresh

  const std::vector<NodeId> group = cluster.group_of(file);
  const NodeId peer = group[1];
  shard::RequestRouter& router = cluster.router();
  ASSERT_GT(router.freshness_hint(file, peer), 0u);

  cluster.crash_endpoint(peer);
  EXPECT_EQ(router.freshness_hint(file, peer), 0u)
      << "crash must purge the dead incarnation's hints";
  EXPECT_GT(router.stats().expired_hints, 0u);

  cluster.restart_endpoint(peer);
  // The restarted incarnation starts unhinted — not preferred on its
  // pre-crash reputation — and an honest low observation is accepted
  // (keep-max would have pinned the pre-crash count).
  EXPECT_EQ(router.freshness_hint(file, peer), 0u);
  router.note_freshness(file, peer, 2, cluster.sim().now());
  EXPECT_EQ(router.freshness_hint(file, peer), 2u);
}

TEST(ClientSessionTest, ReadCacheServesRepeatReadsInsideTheBound) {
  shard::ShardedCluster cluster(session_config(1203));
  Client client(cluster);
  ClientSession writer = client.session();

  const FileId file = 6;
  ASSERT_TRUE(writer.put(file, "v0", 1.0).ok());
  cluster.run_for(sec(1));

  ClientSession reader = client.session(
      {.level = ConsistencyLevel::bounded_staleness(10, sec(5)),
       .origin = 2,
       .cache_reads = true});
  const std::uint64_t routed_before = cluster.router().stats().reads;

  // First read routes and populates the cache.
  const OpHandle<ReadResult> miss = reader.read(file);
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(cluster.router().stats().reads, routed_before + 1);
  EXPECT_EQ(reader.stats().cache_hits, 0u);

  // Repeat read: served from the snapshot, zero router traffic, zero
  // latency, same shared view.
  const OpHandle<ReadResult> hit = reader.read(file);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(cluster.router().stats().reads, routed_before + 1);
  EXPECT_EQ(reader.stats().cache_hits, 1u);
  EXPECT_EQ(hit.latency(), 0);
  EXPECT_EQ(hit->updates.get(), miss->updates.get());

  // The served age is provable: it grows exactly with the sim clock and
  // must never exceed the declared bound.
  cluster.run_for(sec(4));
  const OpHandle<ReadResult> aged = reader.read(file);
  ASSERT_TRUE(aged.ok());
  EXPECT_EQ(reader.stats().cache_hits, 2u);
  EXPECT_GE(aged->staleness_age, sec(4));
  EXPECT_LE(aged->staleness_age, sec(5));

  // Past the bound the snapshot can never be served again: expiry, and
  // the read routes (and re-caches).
  cluster.run_for(sec(2));
  const OpHandle<ReadResult> expired = reader.read(file);
  ASSERT_TRUE(expired.ok());
  EXPECT_EQ(reader.stats().cache_expiries, 1u);
  EXPECT_EQ(cluster.router().stats().reads, routed_before + 2);

  // The session's own write invalidates its cache (read-your-writes at
  // the level's guarantee): the next read routes instead of serving the
  // pre-write snapshot.
  (void)reader.read(file);  // hit on the re-cached snapshot
  EXPECT_EQ(reader.stats().cache_hits, 3u);
  (void)reader.put(file, "mine", 1.0);
  const OpHandle<ReadResult> after_write = reader.read(file);
  ASSERT_TRUE(after_write.ok());
  EXPECT_EQ(cluster.router().stats().reads, routed_before + 3);

  // Levels that cannot prove the bound bypass the cache entirely.
  const OpHandle<ReadResult> strong =
      reader.read(file, ConsistencyLevel::strong());
  ASSERT_TRUE(strong.ok());
  EXPECT_EQ(cluster.router().stats().reads, routed_before + 4);
  // A versions-only bound is not provable without the cluster either.
  const OpHandle<ReadResult> versions_only =
      reader.read(file, ConsistencyLevel::bounded_staleness(10));
  ASSERT_TRUE(versions_only.ok());
  EXPECT_EQ(cluster.router().stats().reads, routed_before + 5);
  EXPECT_EQ(reader.stats().cache_hits, 3u);
}

TEST(ClientSessionTest, PerOpOverrideAndSessionStats) {
  shard::ShardedCluster cluster(session_config(808));
  Client client(cluster);
  ClientSession session = client.session(
      {.level = ConsistencyLevel::eventual_nearest(), .origin = 1});

  const FileId file = 2;
  ASSERT_TRUE(session.put(file, "x", 1.0).ok());
  cluster.run_for(sec(1));

  (void)session.read(file);  // declared level: eventual
  const OpHandle<ReadResult> strong =
      session.read(file, ConsistencyLevel::strong());
  EXPECT_EQ(strong->served_by, cluster.coordinator_endpoint(file));

  EXPECT_EQ(session.stats().puts, 1u);
  EXPECT_EQ(session.stats().reads, 2u);
  EXPECT_EQ(cluster.router().stats().nearest_reads, 1u);
  EXPECT_EQ(cluster.router().stats().strong_reads, 1u);
  EXPECT_EQ(client.sessions_opened(), 1u);

  EXPECT_TRUE(session.close(file));
  EXPECT_FALSE(session.close(file));
}

}  // namespace
}  // namespace idea::client
