/// \file engine_test.cpp
/// \brief OpenLoopEngine determinism and shaping: same-seed runs replay
///        the identical op schedule, rate phases shape arrivals, Zipf
///        jumps concentrate the key draw, and hotspot phases move it.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "sim/simulator.hpp"
#include "workload/engine.hpp"

namespace idea::workload {
namespace {

using Record = std::tuple<SimTime, std::uint32_t, bool, std::uint32_t,
                          NodeId, std::uint64_t>;

std::vector<Record> run_engine(const EngineOptions& options,
                               const std::vector<TenantSpec>& tenants) {
  sim::Simulator sim;
  std::vector<Record> ops;
  OpenLoopEngine engine(sim, options, tenants, [&](const Op& op) {
    ops.emplace_back(sim.now(), op.tenant, op.is_read, op.key, op.origin,
                     op.index);
  });
  engine.start();
  sim.run_until(options.end + 1);
  return ops;
}

TEST(OpenLoopEngineTest, SameSeedReplaysIdenticalSchedule) {
  TenantSpec mixed;
  mixed.name = "mixed";
  mixed.keys = 64;
  mixed.read_fraction = 0.7;
  mixed.rate = {{0, 200.0}, {sec(2), 50.0}};
  mixed.zipf = {{0, 0.0}, {sec(1), 2.0}};
  mixed.hotspot = {{0, 0}, {sec(3), 32}};
  mixed.origins = {0, 3, 5};
  TenantSpec writer;
  writer.name = "writer";
  writer.keys = 8;
  writer.read_fraction = 0.0;
  writer.rate = {{0, 40.0}};
  const EngineOptions options{msec(10), sec(4), 77};

  const std::vector<Record> a = run_engine(options, {mixed, writer});
  const std::vector<Record> b = run_engine(options, {mixed, writer});
  ASSERT_GT(a.size(), 100u);
  EXPECT_EQ(a, b);

  // A different seed produces a different schedule.
  EngineOptions reseeded = options;
  reseeded.seed = 78;
  EXPECT_NE(a, run_engine(reseeded, {mixed, writer}));
}

TEST(OpenLoopEngineTest, RatePhasesShapeArrivals) {
  TenantSpec t;
  t.keys = 4;
  t.rate = {{0, 100.0}, {sec(2), 0.0}, {sec(4), 200.0}};
  const std::vector<Record> ops = run_engine({0, sec(6), 11}, {t});

  std::uint64_t first = 0;
  std::uint64_t quiet = 0;
  std::uint64_t last = 0;
  for (const Record& r : ops) {
    const SimTime at = std::get<0>(r);
    if (at < sec(2)) {
      ++first;
    } else if (at < sec(4)) {
      // Open-loop semantics: the inter-arrival gap is drawn at
      // scheduling time, so at most the one op armed under the previous
      // phase's rate may spill past the boundary.
      ++quiet;
      EXPECT_LT(at, sec(2) + msec(100)) << "op deep inside zero-rate phase";
    } else {
      ++last;
    }
  }
  // Poisson arrivals: expect ~200 / ~0 / ~400 with generous slack.
  EXPECT_GT(first, 140u);
  EXPECT_LT(first, 260u);
  EXPECT_LE(quiet, 1u) << "zero-rate phase must be silent";
  EXPECT_GT(last, 300u);
  EXPECT_LT(last, 500u);
}

TEST(OpenLoopEngineTest, ZipfJumpConcentratesTheDraw) {
  TenantSpec t;
  t.keys = 100;
  t.rate = {{0, 500.0}};
  t.zipf = {{0, 0.0}, {sec(2), 2.5}};
  const std::vector<Record> ops = run_engine({0, sec(4), 22}, {t});

  std::map<std::uint32_t, std::uint64_t> uniform;
  std::map<std::uint32_t, std::uint64_t> skewed;
  std::uint64_t uniform_total = 0;
  std::uint64_t skewed_total = 0;
  for (const Record& r : ops) {
    if (std::get<0>(r) < sec(2)) {
      ++uniform[std::get<3>(r)];
      ++uniform_total;
    } else {
      ++skewed[std::get<3>(r)];
      ++skewed_total;
    }
  }
  std::uint64_t uniform_top = 0;
  for (const auto& [key, n] : uniform) uniform_top = std::max(uniform_top, n);
  // Uniform over 100 keys: no key should dominate.
  EXPECT_LT(static_cast<double>(uniform_top) /
                static_cast<double>(uniform_total),
            0.08);
  // Zipf(2.5): rank 0 alone draws the majority.
  EXPECT_GT(static_cast<double>(skewed[0]) /
                static_cast<double>(skewed_total),
            0.5);
}

TEST(OpenLoopEngineTest, HotspotPhaseMovesTheFavoredKeys) {
  TenantSpec t;
  t.keys = 40;
  t.rate = {{0, 400.0}};
  t.zipf = {{0, 3.0}};
  t.hotspot = {{0, 5}, {sec(2), 25}};
  const std::vector<Record> ops = run_engine({0, sec(4), 33}, {t});

  std::map<std::uint32_t, std::uint64_t> before;
  std::map<std::uint32_t, std::uint64_t> after;
  for (const Record& r : ops) {
    (std::get<0>(r) < sec(2) ? before : after)[std::get<3>(r)]++;
  }
  const auto mode = [](const std::map<std::uint32_t, std::uint64_t>& m) {
    std::uint32_t best = 0;
    std::uint64_t n = 0;
    for (const auto& [key, count] : m) {
      if (count > n) {
        best = key;
        n = count;
      }
    }
    return best;
  };
  // Zipf rank 0 maps to key (offset + 0) % keys in each phase.
  EXPECT_EQ(mode(before), 5u);
  EXPECT_EQ(mode(after), 25u);
}

TEST(OpenLoopEngineTest, ReadFractionAndOriginsAreRespected) {
  TenantSpec t;
  t.keys = 10;
  t.read_fraction = 0.3;
  t.rate = {{0, 400.0}};
  t.origins = {2, 5};
  const std::vector<Record> ops = run_engine({0, sec(3), 44}, {t});

  std::uint64_t reads = 0;
  for (const Record& r : ops) {
    if (std::get<2>(r)) ++reads;
    const NodeId origin = std::get<4>(r);
    EXPECT_TRUE(origin == 2 || origin == 5);
  }
  const double frac =
      static_cast<double>(reads) / static_cast<double>(ops.size());
  EXPECT_GT(frac, 0.2);
  EXPECT_LT(frac, 0.4);

  // No declared origins: ops carry kNoNode (client picks/co-locates).
  TenantSpec bare = t;
  bare.origins.clear();
  bare.read_fraction = 1.0;
  for (const Record& r : run_engine({0, sec(1), 44}, {bare})) {
    EXPECT_EQ(std::get<4>(r), kNoNode);
    EXPECT_TRUE(std::get<2>(r));
  }
}

TEST(OpenLoopEngineTest, StatsAndIndicesAccount) {
  TenantSpec reader;
  reader.keys = 4;
  reader.rate = {{0, 100.0}};
  TenantSpec writer;
  writer.keys = 4;
  writer.read_fraction = 0.0;
  writer.rate = {{0, 60.0}};

  sim::Simulator sim;
  std::map<std::uint32_t, std::uint64_t> next_index;
  std::uint64_t seen = 0;
  OpenLoopEngine engine(sim, {0, sec(4), 55}, {reader, writer},
                        [&](const Op& op) {
                          EXPECT_EQ(op.index, next_index[op.tenant]++);
                          ++seen;
                        });
  engine.start();
  sim.run_until(sec(5));

  EXPECT_EQ(engine.total_ops(), seen);
  EXPECT_EQ(engine.stats(0).ops + engine.stats(1).ops, seen);
  EXPECT_EQ(engine.stats(0).writes, 0u);
  EXPECT_EQ(engine.stats(1).reads, 0u);
  EXPECT_GT(engine.stats(0).reads, 0u);
  EXPECT_GT(engine.stats(1).writes, 0u);
}

}  // namespace
}  // namespace idea::workload
