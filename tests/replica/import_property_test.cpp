/// \file import_property_test.cpp
/// \brief Randomized property test for ReplicaStore::import_log against a
///        flat map oracle.
///
/// import_log is the load-bearing primitive of crash recovery: durable
/// checkpoints, survivor state re-adoption and own-writer reconciliation
/// all funnel through it.  Each of the 10,000 cases below generates
/// per-writer histories, splits them into shuffled batches, imports them
/// in random order and checks the store against an oracle that models the
/// log as a plain std::map with OR'd invalidation flags:
///
///  * completeness  — every generated update lands; nothing stays parked;
///  * order-insensitivity — a different batch permutation converges to
///    the same content digest;
///  * round-trip idempotence — export_log re-imported into a fresh store
///    reproduces the digest, and a second import applies nothing;
///  * exact ImportReport accounting — applied / duplicates /
///    invalidation_merges sum to what the oracle predicts;
///  * invalidation merge — flags arriving after the fact OR in and move
///    the meta value exactly as the oracle computes.

#include "replica/store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace idea::replica {
namespace {

constexpr int kCases = 10'000;

struct Case {
  std::vector<Update> all;                  ///< Every generated update.
  std::vector<std::vector<Update>> batches; ///< Partition of `all`.
};

Case generate(Rng& rng) {
  Case c;
  const auto writers = static_cast<NodeId>(rng.uniform_int(1, 4));
  for (NodeId w = 0; w < writers; ++w) {
    const auto history = rng.uniform_int(0, 6);
    for (std::int64_t seq = 1; seq <= history; ++seq) {
      Update u;
      u.key = UpdateKey{w, static_cast<std::uint64_t>(seq)};
      u.file = 7;
      // Writer-local stamps are non-decreasing in real histories.
      u.stamp = sec(seq) + msec(rng.uniform_int(0, 999));
      u.content = std::string(1, static_cast<char>('a' + rng.uniform_int(0, 25)));
      // Integral deltas keep the oracle's meta sum exact in floating point.
      u.meta_delta = static_cast<double>(rng.uniform_int(0, 4));
      u.invalidated = rng.chance(0.15);
      c.all.push_back(std::move(u));
    }
  }
  // Random partition into up to 4 batches, each internally shuffled: the
  // store must absorb arbitrary interleavings of writers and sequence
  // gaps (its reorder buffer parks out-of-order arrivals).
  const auto batch_count = static_cast<std::size_t>(rng.uniform_int(1, 4));
  c.batches.resize(batch_count);
  for (const Update& u : c.all) {
    c.batches[static_cast<std::size_t>(rng.next_below(batch_count))]
        .push_back(u);
  }
  for (auto& batch : c.batches) rng.shuffle(batch);
  return c;
}

/// Import the case's batches in the order given by `order`.
ReplicaStore::ImportReport import_all(ReplicaStore& store, const Case& c,
                                      const std::vector<std::size_t>& order) {
  ReplicaStore::ImportReport total;
  for (std::size_t i : order) {
    const ReplicaStore::ImportReport r = store.import_log(c.batches[i]);
    total.applied += r.applied;
    total.duplicates += r.duplicates;
    total.invalidation_merges += r.invalidation_merges;
  }
  return total;
}

TEST(ImportLogProperty, MatchesMapOracleAcross10kCases) {
  Rng rng(0xC4A5'2026ULL);
  for (int n = 0; n < kCases; ++n) {
    const Case c = generate(rng);

    // Oracle: the applied log is exactly the generated set (prefix-complete
    // per writer), flags as generated.
    std::map<UpdateKey, Update> oracle;
    for (const Update& u : c.all) oracle.emplace(u.key, u);

    std::vector<std::size_t> order(c.batches.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

    ReplicaStore a(0, 7);
    const ReplicaStore::ImportReport first = import_all(a, c, order);
    ASSERT_EQ(a.update_count(), oracle.size()) << "case " << n;
    ASSERT_EQ(a.pending_remote(), 0u) << "case " << n;
    ASSERT_EQ(first.applied, oracle.size()) << "case " << n;
    ASSERT_EQ(first.duplicates, 0u) << "case " << n;
    ASSERT_EQ(first.invalidation_merges, 0u) << "case " << n;
    double expected_meta = 0.0;
    for (const auto& [key, u] : oracle) {
      const Update* held = a.find(key);
      ASSERT_NE(held, nullptr) << "case " << n;
      ASSERT_EQ(held->content, u.content) << "case " << n;
      ASSERT_EQ(held->invalidated, u.invalidated) << "case " << n;
      if (!u.invalidated) expected_meta += u.meta_delta;
    }
    ASSERT_DOUBLE_EQ(a.meta_value(), expected_meta) << "case " << n;

    // Order-insensitivity: a different batch permutation converges to the
    // same canonical contents.
    rng.shuffle(order);
    ReplicaStore b(1, 7);
    import_all(b, c, order);
    ASSERT_EQ(b.content_digest(), a.content_digest()) << "case " << n;

    // Round-trip idempotence: export -> fresh import reproduces the
    // digest; re-importing the same export applies nothing and reports
    // every update as a duplicate.
    const std::vector<Update> exported = a.export_log();
    ReplicaStore fresh(2, 7);
    const ReplicaStore::ImportReport rt = fresh.import_log(exported);
    ASSERT_EQ(rt.applied, oracle.size()) << "case " << n;
    ASSERT_EQ(fresh.content_digest(), a.content_digest()) << "case " << n;
    const ReplicaStore::ImportReport again = fresh.import_log(exported);
    ASSERT_EQ(again.applied, 0u) << "case " << n;
    ASSERT_EQ(again.invalidation_merges, 0u) << "case " << n;
    ASSERT_EQ(again.duplicates, oracle.size()) << "case " << n;

    // Invalidation merge: a batch re-sending every update with some flags
    // upgraded ORs the new flags in (never clears one) and reports the
    // split exactly.
    std::vector<Update> upgraded = a.export_log();
    std::size_t newly_flagged = 0;
    for (Update& u : upgraded) {
      if (!u.invalidated && rng.chance(0.3)) {
        u.invalidated = true;
        ++newly_flagged;
        oracle.find(u.key)->second.invalidated = true;
      }
    }
    const ReplicaStore::ImportReport merge = a.import_log(upgraded);
    ASSERT_EQ(merge.applied, 0u) << "case " << n;
    ASSERT_EQ(merge.invalidation_merges, newly_flagged) << "case " << n;
    ASSERT_EQ(merge.duplicates, oracle.size() - newly_flagged)
        << "case " << n;
    expected_meta = 0.0;
    for (const auto& [key, u] : oracle) {
      ASSERT_EQ(a.find(key)->invalidated, u.invalidated) << "case " << n;
      if (!u.invalidated) expected_meta += u.meta_delta;
    }
    ASSERT_DOUBLE_EQ(a.meta_value(), expected_meta) << "case " << n;
  }
}

TEST(ImportLogProperty, AdoptsOwnWriterHistory) {
  // A restarted coordinator re-importing its own pre-crash history must
  // continue the sequence, not fork it (sequence reuse would collide keys
  // cluster-wide).
  ReplicaStore old(0, 7);
  old.apply_local(sec(1), "a", 1.0);
  old.apply_local(sec(2), "b", 1.0);
  old.apply_local(sec(3), "c", 1.0);

  ReplicaStore restarted(0, 7);
  restarted.import_log(old.export_log());
  EXPECT_EQ(restarted.local_seq(), 3u);
  const Update& next = restarted.apply_local(sec(4), "d", 1.0);
  EXPECT_EQ(next.key.seq, 4u);
  EXPECT_EQ(restarted.update_count(), 4u);
}

}  // namespace
}  // namespace idea::replica
