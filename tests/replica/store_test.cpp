#include "replica/store.hpp"

#include <gtest/gtest.h>

namespace idea::replica {
namespace {

TEST(ReplicaStore, LocalWritesSequence) {
  ReplicaStore s(0, 1);
  const Update& u1 = s.apply_local(sec(1), "a", 1.0);
  const Update& u2 = s.apply_local(sec(2), "b", 2.0);
  EXPECT_EQ(u1.key.seq, 1u);
  EXPECT_EQ(u2.key.seq, 2u);
  EXPECT_EQ(s.local_seq(), 2u);
  EXPECT_EQ(s.update_count(), 2u);
  EXPECT_DOUBLE_EQ(s.meta_value(), 3.0);
  EXPECT_EQ(s.evv().count_of(0), 2u);
}

TEST(ReplicaStore, FindAndHas) {
  ReplicaStore s(0, 1);
  s.apply_local(sec(1), "a", 1.0);
  EXPECT_TRUE(s.has(UpdateKey{0, 1}));
  EXPECT_FALSE(s.has(UpdateKey{0, 2}));
  const Update* u = s.find(UpdateKey{0, 1});
  ASSERT_NE(u, nullptr);
  EXPECT_EQ(u->content, "a");
  EXPECT_EQ(s.find(UpdateKey{9, 1}), nullptr);
}

TEST(ReplicaStore, RemoteInOrder) {
  ReplicaStore a(0, 1), b(1, 1);
  const Update& u = a.apply_local(sec(1), "x", 5.0);
  EXPECT_TRUE(b.apply_remote(u));
  EXPECT_TRUE(b.has(u.key));
  EXPECT_DOUBLE_EQ(b.meta_value(), 5.0);
  // Idempotent.
  EXPECT_TRUE(b.apply_remote(u));
  EXPECT_EQ(b.update_count(), 1u);
}

TEST(ReplicaStore, RemoteOutOfOrderBuffered) {
  ReplicaStore a(0, 1), b(1, 1);
  const Update u1 = a.apply_local(sec(1), "x", 1.0);
  const Update u2 = a.apply_local(sec(2), "y", 2.0);
  const Update u3 = a.apply_local(sec(3), "z", 4.0);
  EXPECT_FALSE(b.apply_remote(u3));  // parked
  EXPECT_FALSE(b.apply_remote(u2));  // parked
  EXPECT_EQ(b.update_count(), 0u);
  EXPECT_EQ(b.pending_remote(), 2u);
  EXPECT_TRUE(b.apply_remote(u1));  // drains the buffer
  EXPECT_EQ(b.update_count(), 3u);
  EXPECT_EQ(b.pending_remote(), 0u);
  EXPECT_DOUBLE_EQ(b.meta_value(), 7.0);
}

TEST(ReplicaStore, UpdatesAheadOf) {
  ReplicaStore a(0, 1);
  a.apply_local(sec(1), "1", 0);
  a.apply_local(sec(2), "2", 0);
  a.apply_local(sec(3), "3", 0);
  vv::VersionVector peer;
  peer.set(0, 1);
  const auto ahead = a.updates_ahead_of(peer);
  ASSERT_EQ(ahead.size(), 2u);
  EXPECT_EQ(ahead[0].key.seq, 2u);
  EXPECT_EQ(ahead[1].key.seq, 3u);
}

TEST(ReplicaStore, StalenessAheadOfCountsWithoutCopying) {
  ReplicaStore a(0, 1);
  a.apply_local(sec(1), "1", 0);
  a.apply_local(sec(2), "2", 0);
  a.apply_local(sec(3), "3", 0);
  vv::VersionVector peer;
  peer.set(0, 1);
  const auto probe = a.staleness_ahead_of(peer);
  EXPECT_EQ(probe.versions, 2u);
  EXPECT_EQ(probe.oldest_stamp, sec(2));  // oldest *missing* update
  // A caught-up peer probes clean.
  peer.set(0, 3);
  EXPECT_EQ(a.staleness_ahead_of(peer).versions, 0u);
  // The probe mirrors updates_ahead_of exactly, just without the copies.
  vv::VersionVector empty;
  EXPECT_EQ(a.staleness_ahead_of(empty).versions,
            a.updates_ahead_of(empty).size());
  EXPECT_EQ(a.staleness_ahead_of(empty).oldest_stamp, sec(1));
}

TEST(ReplicaStore, ContentsSnapshotIsSharedAndInvalidatedOnMutation) {
  ReplicaStore s(0, 1);
  s.apply_local(sec(1), "a", 1.0);
  s.apply_local(sec(2), "b", 1.0);
  const auto view = s.contents_snapshot();
  ASSERT_EQ(view->size(), 2u);
  EXPECT_EQ((*view)[0].content, "a");
  // Stable between mutations: repeated reads share the allocation.
  EXPECT_EQ(s.contents_snapshot().get(), view.get());
  // Any content mutation rebuilds the next snapshot...
  s.apply_local(sec(3), "c", 1.0);
  const auto after = s.contents_snapshot();
  EXPECT_NE(after.get(), view.get());
  EXPECT_EQ(after->size(), 3u);
  // ...while the old view stays valid for holders (immutable share).
  EXPECT_EQ(view->size(), 2u);
  // Invalidation also counts as a mutation (digest/meta change).
  EXPECT_TRUE(s.invalidate(UpdateKey{0, 1}));
  EXPECT_NE(s.contents_snapshot().get(), after.get());
  EXPECT_TRUE((*s.contents_snapshot())[0].invalidated);
}

TEST(ReplicaStore, UpdatesAheadOfMultiWriterSorted) {
  ReplicaStore a(0, 1), b(1, 1);
  b.apply_local(sec(1), "b1", 0);
  b.apply_local(sec(2), "b2", 0);
  a.apply_local(sec(3), "a1", 0);
  for (const auto& u : b.updates_ahead_of(vv::VersionVector{})) {
    a.apply_remote(u);
  }
  const auto ahead = a.updates_ahead_of(vv::VersionVector{});
  ASSERT_EQ(ahead.size(), 3u);
  EXPECT_LT(ahead[0].key, ahead[1].key);
  EXPECT_LT(ahead[1].key, ahead[2].key);
}

TEST(ReplicaStore, InvalidateAffectsMetaAndDigest) {
  ReplicaStore s(0, 1);
  s.apply_local(sec(1), "a", 3.0);
  s.apply_local(sec(2), "b", 4.0);
  const auto digest_before = s.content_digest();
  EXPECT_TRUE(s.invalidate(UpdateKey{0, 1}));
  EXPECT_DOUBLE_EQ(s.meta_value(), 4.0);
  EXPECT_NE(s.content_digest(), digest_before);
  EXPECT_FALSE(s.invalidate(UpdateKey{9, 9}));
  // Idempotent invalidation.
  EXPECT_TRUE(s.invalidate(UpdateKey{0, 1}));
  EXPECT_DOUBLE_EQ(s.meta_value(), 4.0);
}

TEST(ReplicaStore, OrderedContentsCanonical) {
  ReplicaStore a(0, 1), b(1, 1);
  b.apply_local(sec(5), "later", 0);
  a.apply_local(sec(1), "early", 0);
  a.apply_remote(*b.find(UpdateKey{1, 1}));
  const auto ordered = a.ordered_contents();
  ASSERT_EQ(ordered.size(), 2u);
  EXPECT_EQ(ordered[0].content, "early");
  EXPECT_EQ(ordered[1].content, "later");
}

TEST(ReplicaStore, DigestsMatchForSameHistory) {
  ReplicaStore a(0, 1), b(1, 1);
  const Update u1 = a.apply_local(sec(1), "x", 1.0);
  b.apply_remote(u1);
  const Update u2 = b.apply_local(sec(2), "y", 1.0);
  a.apply_remote(u2);
  EXPECT_EQ(a.content_digest(), b.content_digest());
}

TEST(ReplicaStore, DigestsDifferForDifferentHistory) {
  ReplicaStore a(0, 1), b(1, 1);
  a.apply_local(sec(1), "x", 1.0);
  b.apply_local(sec(1), "y", 1.0);
  EXPECT_NE(a.content_digest(), b.content_digest());
}

TEST(ReplicaStore, RollbackDropsNewUpdates) {
  ReplicaStore s(0, 1);
  s.apply_local(sec(1), "keep", 1.0);
  s.apply_local(sec(5), "drop1", 2.0);
  s.apply_local(sec(6), "drop2", 4.0);
  const std::size_t dropped = s.rollback_to(sec(2));
  EXPECT_EQ(dropped, 2u);
  EXPECT_EQ(s.update_count(), 1u);
  EXPECT_EQ(s.local_seq(), 1u);
  EXPECT_DOUBLE_EQ(s.meta_value(), 1.0);
  EXPECT_EQ(s.evv().count_of(0), 1u);
  // New writes continue the sequence cleanly after rollback.
  const Update& u = s.apply_local(sec(7), "new", 8.0);
  EXPECT_EQ(u.key.seq, 2u);
}

TEST(ReplicaStore, RollbackNoopWhenNothingNewer) {
  ReplicaStore s(0, 1);
  s.apply_local(sec(1), "a", 1.0);
  EXPECT_EQ(s.rollback_to(sec(10)), 0u);
  EXPECT_EQ(s.update_count(), 1u);
}

TEST(ReplicaStore, RollbackClearsPendingBuffer) {
  ReplicaStore a(0, 1), b(1, 1);
  a.apply_local(sec(1), "1", 0);
  const Update u2 = a.apply_local(sec(9), "2", 0);
  b.apply_remote(u2);  // parked, stamp 9
  EXPECT_EQ(b.pending_remote(), 1u);
  b.rollback_to(sec(5));
  EXPECT_EQ(b.pending_remote(), 0u);
}

TEST(ReplicaStore, ReacquireOwnUpdatesAfterRollback) {
  // A replica rolls back its own updates, then relearns them from a peer.
  ReplicaStore a(0, 1), b(1, 1);
  const Update u1 = a.apply_local(sec(1), "1", 1.0);
  const Update u2 = a.apply_local(sec(5), "2", 1.0);
  b.apply_remote(u1);
  b.apply_remote(u2);
  a.rollback_to(sec(2));
  EXPECT_EQ(a.local_seq(), 1u);
  EXPECT_TRUE(a.apply_remote(u2));
  EXPECT_EQ(a.local_seq(), 2u);
  EXPECT_EQ(a.content_digest(), b.content_digest());
}

TEST(ReplicaStore, WireBytesScaleWithContent) {
  Update u;
  u.content = std::string(100, 'x');
  EXPECT_EQ(u.wire_bytes(), 140u);
}

TEST(CanonicalOrder, TieBreaksByWriterThenSeq) {
  Update a, b;
  a.stamp = b.stamp = sec(1);
  a.key = UpdateKey{1, 1};
  b.key = UpdateKey{0, 2};
  CanonicalOrder lt;
  EXPECT_TRUE(lt(b, a));
  EXPECT_FALSE(lt(a, b));
}

}  // namespace
}  // namespace idea::replica
