/// \file controller_test.cpp
/// \brief ConsistencyController control rules in isolation: escalation,
///        step-down hysteresis, relax/rewarm, SLO renegotiation, and the
///        reproducibility of the decision log.
///
/// The controller is driven directly (manual tick(), no cluster): each
/// test feeds a synthetic window of on_read/on_write evidence and asserts
/// the per-file target / per-tenant bound shift the rules produce.

#include <gtest/gtest.h>

#include <string>

#include "adapt/controller.hpp"
#include "sim/simulator.hpp"

namespace idea::adapt {
namespace {

using Target = ConsistencyController::Target;

ControllerConfig test_config() {
  ControllerConfig cfg;
  cfg.enabled = true;
  cfg.period = msec(500);
  cfg.hot_writes = 4;
  cfg.escalation_trigger = 1;
  cfg.cold_windows = 2;
  cfg.hold_windows = 2;
  return cfg;
}

client::ReadResult read_result(SimDuration latency, std::uint64_t staleness,
                               bool escalated = false) {
  client::ReadResult r;
  r.latency = latency;
  r.staleness_versions = staleness;
  r.escalated = escalated;
  return r;
}

/// One hot+contended window of evidence for `file`.
void hot_window(ConsistencyController& ctl, FileId file,
                std::uint32_t writes = 5, bool escalated = true) {
  for (std::uint32_t i = 0; i < writes; ++i) ctl.on_write(file);
  ctl.on_read(file, 0, false, read_result(msec(30), 0, escalated));
}

TEST(ConsistencyControllerTest, EscalatesHotContendedFile) {
  sim::Simulator sim;
  ConsistencyController ctl(sim, test_config(), nullptr);

  // Hot writes alone are not contention: no read-side evidence.
  for (int i = 0; i < 6; ++i) ctl.on_write(1);
  ctl.tick();
  EXPECT_EQ(ctl.target_of(1), Target::kDeclared);

  // Hot writes + a router escalation in the same window: escalate.
  hot_window(ctl, 1);
  ctl.tick();
  EXPECT_EQ(ctl.target_of(1), Target::kStrong);
  EXPECT_EQ(ctl.stats().escalations, 1u);
  const client::ConsistencyLevel served = ctl.effective_level(
      1, 0, client::ConsistencyLevel::bounded_staleness(2));
  EXPECT_EQ(served.level, client::Level::kStrong);
}

TEST(ConsistencyControllerTest, StaleReadsAndProbeAreAlsoEvidence) {
  sim::Simulator sim;
  ConsistencyController ctl(sim, test_config(), nullptr);

  // Stale (but not escalated) policy reads count.
  for (int i = 0; i < 5; ++i) ctl.on_write(2);
  ctl.on_read(2, 0, false, read_result(msec(20), 3));
  ctl.tick();
  EXPECT_EQ(ctl.target_of(2), Target::kStrong);

  // The detector probe breaks ties for hot files with no read evidence.
  ConsistencyController probed(sim, test_config(), nullptr);
  probed.set_level_probe([](FileId) { return 0.5; });  // under the floor
  for (int i = 0; i < 5; ++i) probed.on_write(3);
  probed.tick();
  EXPECT_EQ(probed.target_of(3), Target::kStrong);

  ConsistencyController healthy(sim, test_config(), nullptr);
  healthy.set_level_probe([](FileId) { return 1.0; });
  for (int i = 0; i < 5; ++i) healthy.on_write(3);
  healthy.tick();
  EXPECT_EQ(healthy.target_of(3), Target::kDeclared);
}

TEST(ConsistencyControllerTest, EscalatesToQuorumWhenConfigured) {
  sim::Simulator sim;
  ControllerConfig cfg = test_config();
  cfg.escalate_to_quorum = true;
  cfg.quorum_r = 2;
  ConsistencyController ctl(sim, cfg, nullptr);
  hot_window(ctl, 4);
  ctl.tick();
  EXPECT_EQ(ctl.target_of(4), Target::kQuorum);
  const client::ConsistencyLevel served = ctl.effective_level(
      4, 0, client::ConsistencyLevel::bounded_staleness(2));
  EXPECT_EQ(served.level, client::Level::kQuorum);
  EXPECT_EQ(served.quorum_r, 2u);
}

TEST(ConsistencyControllerTest, HoldsEscalationWhileWritesStayHot) {
  sim::Simulator sim;
  ConsistencyController ctl(sim, test_config(), nullptr);
  hot_window(ctl, 5);
  ctl.tick();
  ASSERT_EQ(ctl.target_of(5), Target::kStrong);

  // Served at Strong, the file produces no escalations or stale reads —
  // but as long as the write pressure persists, the file must NOT step
  // down (it would immediately re-escalate: flip-flop).
  for (int w = 0; w < 6; ++w) {
    for (int i = 0; i < 5; ++i) ctl.on_write(5);
    ctl.on_read(5, 0, false, read_result(msec(40), 0));
    ctl.tick();
    EXPECT_EQ(ctl.target_of(5), Target::kStrong) << "window " << w;
  }
  EXPECT_EQ(ctl.stats().step_downs, 0u);

  // Writes stop: hold_windows calm windows later the file steps down.
  ctl.tick();
  EXPECT_EQ(ctl.target_of(5), Target::kStrong);
  ctl.tick();
  EXPECT_EQ(ctl.target_of(5), Target::kDeclared);
  EXPECT_EQ(ctl.stats().step_downs, 1u);
}

TEST(ConsistencyControllerTest, RelaxesColdQuietFilesAndRewarmsOnWrite) {
  sim::Simulator sim;
  ConsistencyController ctl(sim, test_config(), nullptr);

  // Two write-free windows with (quiet) reads: relax to Eventual.
  ctl.on_read(6, 0, false, read_result(msec(10), 0));
  ctl.tick();
  ctl.on_read(6, 0, false, read_result(msec(10), 0));
  ctl.tick();
  EXPECT_EQ(ctl.target_of(6), Target::kEventual);
  EXPECT_EQ(ctl.effective_level(6, 0, client::ConsistencyLevel::strong())
                .level,
            client::Level::kEventualNearest);

  // A renewed write rewarms synchronously — before the next tick — since
  // Eventual has no bound to cap what a read in between would see.
  ctl.on_write(6);
  EXPECT_EQ(ctl.target_of(6), Target::kDeclared);
  EXPECT_EQ(ctl.stats().rewarms, 1u);
}

TEST(ConsistencyControllerTest, StaleEvidenceBlocksRelaxation) {
  sim::Simulator sim;
  ConsistencyController ctl(sim, test_config(), nullptr);
  // Write-free windows whose reads still observe staleness (replicas not
  // yet healed): the file must NOT relax to an unbounded level.
  for (int w = 0; w < 4; ++w) {
    ctl.on_read(7, 0, false, read_result(msec(10), 3));
    ctl.tick();
    EXPECT_EQ(ctl.target_of(7), Target::kDeclared) << "window " << w;
  }
  // Once the reads come back clean, relaxation proceeds.
  ctl.on_read(7, 0, false, read_result(msec(10), 0));
  ctl.tick();
  EXPECT_EQ(ctl.target_of(7), Target::kEventual);
}

TEST(ConsistencyControllerTest, RenegotiatesBoundsAgainstTheSlo) {
  sim::Simulator sim;
  ConsistencyController ctl(sim, test_config(), nullptr);
  ctl.declare_slo(1, Slo{2, msec(50)});

  // >5% of the window's adaptive reads over the latency clause: loosen.
  for (int i = 0; i < 10; ++i) {
    ctl.on_read(8, 1, true, read_result(msec(80), 0));
  }
  ctl.tick();
  EXPECT_EQ(ctl.bound_shift(1), 1);
  const client::ConsistencyLevel loose = ctl.effective_level(
      8, 1, client::ConsistencyLevel::bounded_staleness(2));
  EXPECT_EQ(loose.level, client::Level::kBoundedStaleness);
  EXPECT_EQ(loose.max_versions, 3u);

  // Staleness pressure wins ties and tightens, one version per window.
  for (int w = 0; w < 3; ++w) {
    for (int i = 0; i < 10; ++i) {
      ctl.on_read(8, 1, true, read_result(msec(80), 5));
    }
    ctl.tick();
  }
  EXPECT_EQ(ctl.bound_shift(1), -2);
  const client::ConsistencyLevel tight = ctl.effective_level(
      8, 1, client::ConsistencyLevel::bounded_staleness(2));
  EXPECT_EQ(tight.max_versions, 0u);  // 2 - 2, floored at zero
  EXPECT_EQ(ctl.stats().renegotiations, 4u);

  // Undeclared tenants and non-bounded levels pass through untouched.
  EXPECT_EQ(ctl.effective_level(8, 9,
                                client::ConsistencyLevel::bounded_staleness(2))
                .max_versions,
            2u);
  EXPECT_EQ(ctl.effective_level(99, 1, client::ConsistencyLevel::strong())
                .level,
            client::Level::kStrong);
}

TEST(ConsistencyControllerTest, UnknownFilesServeTheDeclaredLevel) {
  sim::Simulator sim;
  ConsistencyController ctl(sim, test_config(), nullptr);
  const client::ConsistencyLevel declared =
      client::ConsistencyLevel::bounded_staleness(2, sec(1));
  EXPECT_EQ(ctl.target_of(42), Target::kDeclared);
  EXPECT_TRUE(ctl.effective_level(42, 0, declared) == declared);
}

TEST(ConsistencyControllerTest, SameFeedbackSameDecisionHistory) {
  sim::Simulator sim_a;
  sim::Simulator sim_b;
  ConsistencyController a(sim_a, test_config(), nullptr);
  ConsistencyController b(sim_b, test_config(), nullptr);
  for (ConsistencyController* ctl : {&a, &b}) {
    ctl->declare_slo(1, Slo{2, msec(50)});
    hot_window(*ctl, 1);
    for (int i = 0; i < 10; ++i) {
      ctl->on_read(2, 1, true, read_result(msec(90), 0));
    }
    ctl->tick();
    ctl->on_read(3, 0, false, read_result(msec(5), 0));
    ctl->tick();
    ctl->tick();
    ctl->on_write(3);
  }
  ASSERT_FALSE(a.decision_log().empty());
  EXPECT_EQ(a.decision_log(), b.decision_log());
  EXPECT_EQ(a.decision_digest(), b.decision_digest());
  // The digest is order-sensitive: any divergence must change it.
  EXPECT_EQ(a.stats().decisions, a.decision_log().size());
}

TEST(ConsistencyControllerTest, PeriodicTickRunsOnTheSimClock) {
  sim::Simulator sim;
  ConsistencyController ctl(sim, test_config(), nullptr);
  ctl.start();
  ctl.start();  // idempotent
  sim.run_until(msec(2600));
  EXPECT_EQ(ctl.stats().ticks, 5u);
  ctl.stop();
  sim.run_until(msec(5000));
  EXPECT_EQ(ctl.stats().ticks, 5u);
}

}  // namespace
}  // namespace idea::adapt
