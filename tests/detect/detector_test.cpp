#include "detect/detector.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "net/dispatcher.hpp"
#include "net/sim_transport.hpp"

namespace idea::detect {
namespace {

// A miniature deployment: stores + gossip + detectors with a fixed top
// layer, no IdeaNode on top.
class DetectorFixture : public ::testing::Test {
 protected:
  static constexpr FileId kFile = 1;

  void Build(std::uint32_t nodes, std::vector<NodeId> top_layer,
             DetectorParams params = {}) {
    nodes_ = nodes;
    top_layer_ = std::move(top_layer);
    transport_ = std::make_unique<net::SimTransport>(sim_, latency_);
    overlay::GossipParams gp;
    gp.nodes = nodes;
    gp.ttl = 6;
    for (NodeId n = 0; n < nodes; ++n) {
      stores_.push_back(std::make_unique<replica::ReplicaStore>(n, kFile));
      dispatchers_.push_back(std::make_unique<net::Dispatcher>());
      gossips_.push_back(std::make_unique<overlay::GossipAgent>(
          n, *transport_, gp,
          [this, n](const overlay::GossipEnvelope& env) {
            detectors_[n]->on_gossip(env);
          },
          500 + n));
      detectors_.push_back(std::make_unique<InconsistencyDetector>(
          n, kFile, *transport_, *stores_[n], *gossips_[n],
          [this] { return top_layer_; }, params, 900 + n));
      dispatchers_[n]->route("gossip.", gossips_[n].get());
      dispatchers_[n]->route("detect.", detectors_[n].get());
      transport_->attach(n, dispatchers_[n].get());
    }
  }

  std::optional<DetectionResult> detect_blocking(NodeId node) {
    std::optional<DetectionResult> out;
    detectors_[node]->detect(
        [&out](const DetectionResult& r) { out = r; });
    sim_.run_until(sim_.now() + sec(5));
    return out;
  }

  sim::Simulator sim_;
  sim::ConstantLatency latency_{msec(25)};
  std::unique_ptr<net::SimTransport> transport_;
  std::uint32_t nodes_ = 0;
  std::vector<NodeId> top_layer_;
  std::vector<std::unique_ptr<replica::ReplicaStore>> stores_;
  std::vector<std::unique_ptr<net::Dispatcher>> dispatchers_;
  std::vector<std::unique_ptr<overlay::GossipAgent>> gossips_;
  std::vector<std::unique_ptr<InconsistencyDetector>> detectors_;
};

TEST(ChooseReference, SingleCandidate) {
  vv::ExtendedVersionVector e;
  e.record_update(0, sec(1), 0);
  EXPECT_EQ(choose_reference({{3, e}}), 3u);
}

TEST(ChooseReference, DominatedReplicaLoses) {
  vv::ExtendedVersionVector low, high;
  low.record_update(0, sec(1), 0);
  high.record_update(0, sec(1), 0);
  high.record_update(0, sec(2), 0);
  // Node 9 holds the dominated state; node 2 the maximal one.
  EXPECT_EQ(choose_reference({{9, low}, {2, high}}), 2u);
}

TEST(ChooseReference, ConcurrentPicksHighestId) {
  vv::ExtendedVersionVector x, y;
  x.record_update(0, sec(1), 0);
  y.record_update(1, sec(1), 0);
  EXPECT_EQ(choose_reference({{4, x}, {7, y}}), 7u);
  EXPECT_EQ(choose_reference({{7, x}, {4, y}}), 7u);
}

TEST(ChooseReference, EqualStatesPickHighestId) {
  vv::ExtendedVersionVector x;
  x.record_update(0, sec(1), 0);
  EXPECT_EQ(choose_reference({{4, x}, {7, x}}), 7u);
}

TEST_F(DetectorFixture, NoConflictWhenIdentical) {
  Build(4, {0, 1, 2, 3});
  // Same update applied everywhere.
  const replica::Update u = stores_[0]->apply_local(sec(1), "x", 1.0);
  for (NodeId n = 1; n < 4; ++n) stores_[n]->apply_remote(u);
  const auto result = detect_blocking(0);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->conflict);  // "success"
  EXPECT_TRUE(result->triple.is_zero());
  EXPECT_EQ(result->peers_probed, 3u);
  EXPECT_EQ(result->peers_replied, 3u);
  EXPECT_EQ(result->gathered.size(), 4u);
}

TEST_F(DetectorFixture, ConflictDetected) {
  Build(4, {0, 1, 2, 3});
  stores_[0]->apply_local(sec(1), "a", 1.0);
  stores_[2]->apply_local(sec(2), "b", 4.0);
  const auto result = detect_blocking(0);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->conflict);  // "fail"
  EXPECT_FALSE(result->triple.is_zero());
}

TEST_F(DetectorFixture, ReferenceIsHighestMaximal) {
  Build(4, {0, 1, 2, 3});
  stores_[1]->apply_local(sec(1), "a", 1.0);
  stores_[3]->apply_local(sec(2), "b", 2.0);
  const auto result = detect_blocking(0);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->reference, 3u);
}

TEST_F(DetectorFixture, TripleAttachedToStore) {
  Build(3, {0, 1, 2});
  stores_[1]->apply_local(sec(2), "b", 5.0);
  const auto result = detect_blocking(0);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(stores_[0]->evv().triple(), result->triple);
  EXPECT_GT(result->triple.order_error, 0.0);
}

TEST_F(DetectorFixture, AloneInTopLayerSucceeds) {
  Build(3, {0});
  stores_[0]->apply_local(sec(1), "a", 1.0);
  const auto result = detect_blocking(0);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->conflict);
  EXPECT_EQ(result->peers_probed, 0u);
}

TEST_F(DetectorFixture, TimeoutToleratesDeadPeer) {
  DetectorParams p;
  p.probe_timeout = msec(500);
  Build(4, {0, 1, 2, 3}, p);
  transport_->detach(2);  // node 2 is dead
  stores_[0]->apply_local(sec(1), "a", 1.0);
  const auto result = detect_blocking(0);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->peers_probed, 3u);
  EXPECT_EQ(result->peers_replied, 2u);
  EXPECT_GE(result->finished_at - result->started_at, msec(500));
}

TEST_F(DetectorFixture, RoundLatencyIsOneRtt) {
  Build(4, {0, 1, 2, 3});
  stores_[0]->apply_local(sec(1), "a", 1.0);
  const auto result = detect_blocking(0);
  ASSERT_TRUE(result.has_value());
  // Parallel probes: latency ~ max RTT = 2 * 25 ms with constant latency.
  EXPECT_EQ(result->finished_at - result->started_at, msec(50));
}

TEST_F(DetectorFixture, BottomScanReportsConflictToOrigin) {
  Build(8, {0, 1});
  bool reported = false;
  ScanReport seen;
  detectors_[0]->set_report_callback([&](const ScanReport& r) {
    reported = true;
    seen = r;
  });
  stores_[0]->apply_local(sec(1), "a", 1.0);
  // Node 5 (bottom layer) holds a conflicting update the top layer misses.
  stores_[5]->apply_local(sec(2), "hidden", 9.0);
  detectors_[0]->start_background_scan();
  sim_.run_until(sec(25));
  EXPECT_TRUE(reported);
  EXPECT_EQ(seen.reporter, 5u);
  EXPECT_EQ(seen.reporter_evv.count_of(5), 1u);
}

TEST_F(DetectorFixture, NoReportWhenBottomLayerConsistent) {
  Build(8, {0, 1});
  bool reported = false;
  detectors_[0]->set_report_callback(
      [&](const ScanReport&) { reported = true; });
  const replica::Update u = stores_[0]->apply_local(sec(1), "a", 1.0);
  for (NodeId n = 1; n < 8; ++n) stores_[n]->apply_remote(u);
  detectors_[0]->start_background_scan();
  sim_.run_until(sec(25));
  EXPECT_FALSE(reported);
}

TEST_F(DetectorFixture, ScanTimerStartsAndStops) {
  DetectorParams p;
  p.scan_period = sec(5);
  Build(4, {0, 1}, p);
  detectors_[0]->start_background_scan();
  sim_.run_until(sec(21));
  const auto scans_after_20s = detectors_[0]->scans_started();
  EXPECT_EQ(scans_after_20s, 4u);
  detectors_[0]->stop_background_scan();
  sim_.run_until(sec(60));
  EXPECT_EQ(detectors_[0]->scans_started(), scans_after_20s);
}

TEST_F(DetectorFixture, ConcurrentRoundsBothComplete) {
  Build(4, {0, 1, 2, 3});
  stores_[1]->apply_local(sec(1), "x", 1.0);
  int completed = 0;
  detectors_[0]->detect([&](const DetectionResult&) { ++completed; });
  detectors_[0]->detect([&](const DetectionResult&) { ++completed; });
  sim_.run_until(sec(5));
  EXPECT_EQ(completed, 2);
}

}  // namespace
}  // namespace idea::detect
