#include "apps/whiteboard.hpp"

#include <gtest/gtest.h>

#include "apps/workload.hpp"
#include "shard/sharded_cluster.hpp"

namespace idea::apps {
namespace {

core::ClusterConfig board_cluster() {
  core::ClusterConfig cfg;
  cfg.nodes = 10;
  cfg.sync_sizes();
  cfg.idea.controller.mode = core::AdaptiveMode::kHintBased;
  cfg.idea.controller.hint = 0.9;
  cfg.idea.maxima = vv::TripleMaxima{20, 20, 20};
  return cfg;
}

TEST(Whiteboard, StrokeMetaIsScaledAsciiSum) {
  EXPECT_DOUBLE_EQ(WhiteboardApp::stroke_meta("A"), 0.65);
  EXPECT_DOUBLE_EQ(WhiteboardApp::stroke_meta(""), 0.0);
  EXPECT_DOUBLE_EQ(WhiteboardApp::stroke_meta("AB"),
                   (65.0 + 66.0) / 100.0);
}

TEST(Whiteboard, PostAndView) {
  core::IdeaCluster cluster(board_cluster());
  cluster.start();
  WhiteboardApp board(cluster, {1, 4});
  cluster.warm_up({1, 4}, sec(20));
  EXPECT_TRUE(board.post(1, "hello"));
  const auto v = board.view(1);
  ASSERT_EQ(v.size(), 2u);  // warm-up stroke + "hello"
  EXPECT_EQ(v[1], "hello");
}

TEST(Whiteboard, ViewsConvergeAfterResolution) {
  core::IdeaCluster cluster(board_cluster());
  cluster.start();
  WhiteboardApp board(cluster, {1, 4});
  cluster.warm_up({1, 4}, sec(20));
  board.post(1, "from-1");
  board.post(4, "from-4");
  EXPECT_FALSE(board.boards_match());
  cluster.run_for(sec(15));  // hint controller resolves
  EXPECT_TRUE(board.boards_match());
}

TEST(Whiteboard, InvalidatedStrokesHiddenFromView) {
  core::ClusterConfig cfg = board_cluster();
  cfg.idea.resolution.policy.policy =
      core::ResolutionPolicy::kInvalidateBoth;
  core::IdeaCluster cluster(cfg);
  cluster.start();
  WhiteboardApp board(cluster, {1, 4});
  cluster.warm_up({1, 4}, sec(20));
  // Establish a shared consistent base before the clash.
  cluster.node(1).demand_active_resolution();
  cluster.run_for(sec(5));
  const auto before = board.view(1).size();
  board.post(1, "clash-a");
  board.post(4, "clash-b");
  cluster.run_for(sec(15));
  EXPECT_TRUE(board.boards_match());
  // Invalidate-both: the conflicting strokes were cleared everywhere.
  EXPECT_EQ(board.view(1).size(), before);
}

TEST(Whiteboard, LevelsSampledIntoSeries) {
  core::IdeaCluster cluster(board_cluster());
  cluster.start();
  WhiteboardApp board(cluster, {1, 4});
  cluster.warm_up({1, 4}, sec(20));
  for (int i = 0; i < 5; ++i) {
    board.post(1, "s1");
    board.post(4, "s4");
    cluster.run_for(sec(5));
    board.sample_levels(cluster.sim().now());
  }
  EXPECT_EQ(board.worst_series().size(), 5u);
  EXPECT_EQ(board.average_series().size(), 5u);
  // Worst <= average by construction.
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_LE(board.worst_series().value_at(i),
              board.average_series().value_at(i) + 1e-12);
  }
}

TEST(Whiteboard, UserModelTracksAnnoyance) {
  core::ClusterConfig cfg = board_cluster();
  cfg.idea.controller.mode = core::AdaptiveMode::kOnDemand;
  core::IdeaCluster cluster(cfg);
  cluster.start();
  WhiteboardApp board(cluster, {1, 4});
  cluster.warm_up({1, 4}, sec(20));
  board.attach_user(UserModel{1, /*real_tolerance=*/0.99,
                              /*complains=*/true});
  board.post(1, "a");
  board.post(4, "b");
  cluster.run_for(sec(10));
  ASSERT_EQ(board.users().size(), 1u);
  EXPECT_GT(board.users()[0].times_annoyed, 0u);
  EXPECT_GT(board.users()[0].times_complained, 0u);
}

TEST(Whiteboard, SilentUserDoesNotComplain) {
  core::ClusterConfig cfg = board_cluster();
  cfg.idea.controller.mode = core::AdaptiveMode::kOnDemand;
  core::IdeaCluster cluster(cfg);
  cluster.start();
  WhiteboardApp board(cluster, {1, 4});
  cluster.warm_up({1, 4}, sec(20));
  board.attach_user(UserModel{1, 0.99, /*complains=*/false});
  board.post(1, "a");
  board.post(4, "b");
  cluster.run_for(sec(10));
  EXPECT_GT(board.users()[0].times_annoyed, 0u);
  EXPECT_EQ(board.users()[0].times_complained, 0u);
}

TEST(Whiteboard, SharedBoardRunsOverSessions) {
  // The sharded deployment: one board file on the ring, participants as
  // client sessions attached at their own endpoints.
  shard::ShardedClusterConfig cfg;
  cfg.endpoints = 6;
  cfg.replication = 3;
  cfg.seed = 321;
  cfg.sync_sizes();
  cfg.idea.maxima = vv::TripleMaxima{20, 20, 20};
  cfg.idea.controller.mode = core::AdaptiveMode::kOnDemand;
  cfg.idea.controller.hint = 0.0;
  shard::ShardedCluster cluster(cfg);

  const FileId board_file = 1;
  SharedWhiteboard board(cluster, board_file, {0, 2, 5},
                         client::ConsistencyLevel::eventual_nearest());
  EXPECT_TRUE(board.post(0, "hello"));
  EXPECT_TRUE(board.post(2, "world"));
  cluster.run_for(sec(3));

  // Every participant's routed view converged on the posted strokes.
  EXPECT_TRUE(board.boards_match());
  const auto v = board.view(5);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], "hello");
  EXPECT_EQ(v[1], "world");
  // The routed read reports where it was served and at what cost.
  const auto handle = board.read(5);
  ASSERT_TRUE(handle.ok());
  EXPECT_NE(handle->served_by, kNoNode);
  EXPECT_GT(handle->latency, 0);
  EXPECT_GT(board.level(), 0.0);
}

}  // namespace
}  // namespace idea::apps
