#include "apps/booking.hpp"

#include <gtest/gtest.h>

#include "shard/sharded_cluster.hpp"

namespace idea::apps {
namespace {

core::ClusterConfig booking_cluster() {
  core::ClusterConfig cfg;
  cfg.nodes = 10;
  cfg.sync_sizes();
  cfg.idea.controller.mode = core::AdaptiveMode::kFullyAutomatic;
  return cfg;
}

TEST(Booking, SellsWhileSeatsVisible) {
  core::IdeaCluster cluster(booking_cluster());
  cluster.start();
  BookingParams bp;
  bp.capacity = 100;
  BookingSystem booking(cluster, {1, 4, 7}, bp, 5);
  cluster.warm_up({1, 4, 7}, sec(20));
  EXPECT_TRUE(booking.try_book(1));
  EXPECT_EQ(booking.sold(), 1u);
  EXPECT_GT(booking.revenue_view(1), 0.0);
}

TEST(Booking, ViewCountsOnlyLocalKnowledge) {
  core::IdeaCluster cluster(booking_cluster());
  cluster.start();
  BookingParams bp;
  bp.capacity = 100;
  BookingSystem booking(cluster, {1, 4}, bp, 5);
  cluster.warm_up({1, 4}, sec(20));
  booking.try_book(1);
  booking.try_book(4);
  // Without resolution, each server only sees its own sale (plus warmup).
  EXPECT_EQ(booking.live_bookings(1), booking.live_bookings(4));
  const auto remaining = booking.seats_remaining_view(1);
  EXPECT_EQ(remaining, 100 - static_cast<std::int64_t>(
                                 booking.live_bookings(1)));
}

TEST(Booking, OversellDiscoveredOnMerge) {
  core::IdeaCluster cluster(booking_cluster());
  cluster.start();
  BookingParams bp;
  bp.capacity = 4;
  BookingSystem booking(cluster, {1, 4}, bp, 5);
  cluster.warm_up({1, 4}, sec(20));
  // Each server sees 1 warmup booking + its own sales: sells to its
  // local view of capacity, jointly exceeding it.
  for (int i = 0; i < 3; ++i) {
    booking.try_book(1);
    booking.try_book(4);
  }
  EXPECT_GT(booking.oversell_amount(), 0);
}

TEST(Booking, SoldOutViewRefuses) {
  core::IdeaCluster cluster(booking_cluster());
  cluster.start();
  BookingParams bp;
  bp.capacity = 3;
  BookingSystem booking(cluster, {1}, bp, 5);
  cluster.warm_up({1}, sec(10));
  // Warmup wrote 1; sell until the view says full.
  EXPECT_TRUE(booking.try_book(1));
  EXPECT_TRUE(booking.try_book(1));
  EXPECT_FALSE(booking.try_book(1));
  EXPECT_EQ(booking.refused_sold_out(), 1u);
  // With one server the refusal is correct, not an undersell.
  EXPECT_EQ(booking.undersell_count(), 0u);
}

TEST(Booking, BlockedSaleCountsAsUndersellWhenSeatsExist) {
  core::IdeaCluster cluster(booking_cluster());
  cluster.start();
  BookingParams bp;
  bp.capacity = 100;
  BookingSystem booking(cluster, {1, 4}, bp, 5);
  cluster.warm_up({1, 4}, sec(20));
  cluster.node(1).demand_active_resolution();
  cluster.run_for(msec(300));  // mid-round: writes blocked
  const bool sold = booking.try_book(1);
  if (!sold) {
    EXPECT_GE(booking.refused_blocked() + booking.refused_sold_out(), 1u);
    EXPECT_GE(booking.undersell_count(), 1u);
  }
  cluster.run_for(sec(10));
}

TEST(Booking, ResolutionAlignsViews) {
  core::IdeaCluster cluster(booking_cluster());
  cluster.start();
  BookingParams bp;
  bp.capacity = 50;
  BookingSystem booking(cluster, {1, 4}, bp, 5);
  cluster.warm_up({1, 4}, sec(20));
  booking.try_book(1);
  booking.try_book(4);
  booking.try_book(4);
  cluster.node(1).demand_active_resolution();
  cluster.run_for(sec(10));
  // After resolution both servers see every live booking.
  EXPECT_EQ(booking.live_bookings(1), booking.live_bookings(4));
  EXPECT_EQ(booking.seats_remaining_view(1),
            booking.seats_remaining_view(4));
}

TEST(Booking, AuditFeedsControllerBounds) {
  core::IdeaCluster cluster(booking_cluster());
  cluster.start();
  BookingParams bp;
  bp.capacity = 3;
  BookingSystem booking(cluster, {1, 4}, bp, 5);
  cluster.warm_up({1, 4}, sec(20));
  for (int i = 0; i < 3; ++i) {
    booking.try_book(1);
    booking.try_book(4);
  }
  ASSERT_GT(booking.oversell_amount(), 0);
  const double before = cluster.node(1).controller().learned_min_freq();
  booking.audit(1);
  EXPECT_GT(cluster.node(1).controller().learned_min_freq(), before);
  // Second audit without new oversell: no further tightening.
  const double after = cluster.node(1).controller().learned_min_freq();
  booking.audit(1);
  EXPECT_DOUBLE_EQ(cluster.node(1).controller().learned_min_freq(), after);
}

TEST(Booking, DesksRunOverSessionsAndStrongDesksNeverOversell) {
  shard::ShardedClusterConfig cfg;
  cfg.endpoints = 6;
  cfg.replication = 3;
  cfg.seed = 99;
  cfg.sync_sizes();
  cfg.idea.maxima = vv::TripleMaxima{50, 50, 50};
  cfg.idea.controller.mode = core::AdaptiveMode::kOnDemand;
  cfg.idea.controller.hint = 0.0;
  shard::ShardedCluster cluster(cfg);

  BookingParams bp;
  bp.capacity = 10;
  const FileId flight = 1;
  // Strong desks decide from the coordinator's view: they can never
  // oversell, because every booking is visible before the next decision.
  BookingDesks desks(cluster, flight, {0, 1, 3}, bp, 7,
                     client::ConsistencyLevel::strong());
  std::uint64_t attempts = 0;
  for (int round = 0; round < 8; ++round) {
    for (NodeId d : desks.desks()) {
      desks.try_book(d);
      ++attempts;
      cluster.run_for(msec(100));
    }
  }
  EXPECT_GT(attempts, bp.capacity);
  EXPECT_EQ(desks.sold(), bp.capacity);
  EXPECT_EQ(desks.oversell_amount(), 0);
  EXPECT_GT(desks.refused_sold_out(), 0u);
  EXPECT_EQ(desks.seats_remaining_view(0), 0);
}

}  // namespace
}  // namespace idea::apps
