#include "apps/booking.hpp"

#include <gtest/gtest.h>

namespace idea::apps {
namespace {

core::ClusterConfig booking_cluster() {
  core::ClusterConfig cfg;
  cfg.nodes = 10;
  cfg.sync_sizes();
  cfg.idea.controller.mode = core::AdaptiveMode::kFullyAutomatic;
  return cfg;
}

TEST(Booking, SellsWhileSeatsVisible) {
  core::IdeaCluster cluster(booking_cluster());
  cluster.start();
  BookingParams bp;
  bp.capacity = 100;
  BookingSystem booking(cluster, {1, 4, 7}, bp, 5);
  cluster.warm_up({1, 4, 7}, sec(20));
  EXPECT_TRUE(booking.try_book(1));
  EXPECT_EQ(booking.sold(), 1u);
  EXPECT_GT(booking.revenue_view(1), 0.0);
}

TEST(Booking, ViewCountsOnlyLocalKnowledge) {
  core::IdeaCluster cluster(booking_cluster());
  cluster.start();
  BookingParams bp;
  bp.capacity = 100;
  BookingSystem booking(cluster, {1, 4}, bp, 5);
  cluster.warm_up({1, 4}, sec(20));
  booking.try_book(1);
  booking.try_book(4);
  // Without resolution, each server only sees its own sale (plus warmup).
  EXPECT_EQ(booking.live_bookings(1), booking.live_bookings(4));
  const auto remaining = booking.seats_remaining_view(1);
  EXPECT_EQ(remaining, 100 - static_cast<std::int64_t>(
                                 booking.live_bookings(1)));
}

TEST(Booking, OversellDiscoveredOnMerge) {
  core::IdeaCluster cluster(booking_cluster());
  cluster.start();
  BookingParams bp;
  bp.capacity = 4;
  BookingSystem booking(cluster, {1, 4}, bp, 5);
  cluster.warm_up({1, 4}, sec(20));
  // Each server sees 1 warmup booking + its own sales: sells to its
  // local view of capacity, jointly exceeding it.
  for (int i = 0; i < 3; ++i) {
    booking.try_book(1);
    booking.try_book(4);
  }
  EXPECT_GT(booking.oversell_amount(), 0);
}

TEST(Booking, SoldOutViewRefuses) {
  core::IdeaCluster cluster(booking_cluster());
  cluster.start();
  BookingParams bp;
  bp.capacity = 3;
  BookingSystem booking(cluster, {1}, bp, 5);
  cluster.warm_up({1}, sec(10));
  // Warmup wrote 1; sell until the view says full.
  EXPECT_TRUE(booking.try_book(1));
  EXPECT_TRUE(booking.try_book(1));
  EXPECT_FALSE(booking.try_book(1));
  EXPECT_EQ(booking.refused_sold_out(), 1u);
  // With one server the refusal is correct, not an undersell.
  EXPECT_EQ(booking.undersell_count(), 0u);
}

TEST(Booking, BlockedSaleCountsAsUndersellWhenSeatsExist) {
  core::IdeaCluster cluster(booking_cluster());
  cluster.start();
  BookingParams bp;
  bp.capacity = 100;
  BookingSystem booking(cluster, {1, 4}, bp, 5);
  cluster.warm_up({1, 4}, sec(20));
  cluster.node(1).demand_active_resolution();
  cluster.run_for(msec(300));  // mid-round: writes blocked
  const bool sold = booking.try_book(1);
  if (!sold) {
    EXPECT_GE(booking.refused_blocked() + booking.refused_sold_out(), 1u);
    EXPECT_GE(booking.undersell_count(), 1u);
  }
  cluster.run_for(sec(10));
}

TEST(Booking, ResolutionAlignsViews) {
  core::IdeaCluster cluster(booking_cluster());
  cluster.start();
  BookingParams bp;
  bp.capacity = 50;
  BookingSystem booking(cluster, {1, 4}, bp, 5);
  cluster.warm_up({1, 4}, sec(20));
  booking.try_book(1);
  booking.try_book(4);
  booking.try_book(4);
  cluster.node(1).demand_active_resolution();
  cluster.run_for(sec(10));
  // After resolution both servers see every live booking.
  EXPECT_EQ(booking.live_bookings(1), booking.live_bookings(4));
  EXPECT_EQ(booking.seats_remaining_view(1),
            booking.seats_remaining_view(4));
}

TEST(Booking, AuditFeedsControllerBounds) {
  core::IdeaCluster cluster(booking_cluster());
  cluster.start();
  BookingParams bp;
  bp.capacity = 3;
  BookingSystem booking(cluster, {1, 4}, bp, 5);
  cluster.warm_up({1, 4}, sec(20));
  for (int i = 0; i < 3; ++i) {
    booking.try_book(1);
    booking.try_book(4);
  }
  ASSERT_GT(booking.oversell_amount(), 0);
  const double before = cluster.node(1).controller().learned_min_freq();
  booking.audit(1);
  EXPECT_GT(cluster.node(1).controller().learned_min_freq(), before);
  // Second audit without new oversell: no further tightening.
  const double after = cluster.node(1).controller().learned_min_freq();
  booking.audit(1);
  EXPECT_DOUBLE_EQ(cluster.node(1).controller().learned_min_freq(), after);
}

}  // namespace
}  // namespace idea::apps
