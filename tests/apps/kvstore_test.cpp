#include "apps/kvstore.hpp"

#include <gtest/gtest.h>

namespace idea::apps {
namespace {

shard::ShardedClusterConfig kv_cluster_config() {
  shard::ShardedClusterConfig cfg;
  cfg.endpoints = 8;
  cfg.replication = 3;
  cfg.seed = 616;
  cfg.sync_sizes();
  cfg.idea.maxima = vv::TripleMaxima{50, 50, 50};
  cfg.idea.controller.mode = core::AdaptiveMode::kHintBased;
  cfg.idea.controller.hint = 0.9;
  return cfg;
}

TEST(KvStoreTest, PutGetRoundtrip) {
  shard::ShardedCluster cluster(kv_cluster_config());
  KvStore kv(cluster, KvStoreOptions{.buckets = 64, .first_file = 1});

  ASSERT_TRUE(kv.put("user:1", "alice"));
  ASSERT_TRUE(kv.put("user:2", "bob"));
  cluster.run_for(sec(1));

  EXPECT_EQ(kv.get("user:1"), std::optional<std::string>("alice"));
  EXPECT_EQ(kv.get("user:2"), std::optional<std::string>("bob"));
  EXPECT_EQ(kv.get("user:3"), std::nullopt);
  EXPECT_EQ(kv.hits(), 2u);
  EXPECT_EQ(kv.gets(), 3u);
}

TEST(KvStoreTest, LatestWriteWins) {
  shard::ShardedCluster cluster(kv_cluster_config());
  KvStore kv(cluster, KvStoreOptions{.buckets = 16, .first_file = 1});

  ASSERT_TRUE(kv.put("counter", "1"));
  cluster.run_for(msec(200));
  ASSERT_TRUE(kv.put("counter", "2"));
  cluster.run_for(msec(200));
  ASSERT_TRUE(kv.put("counter", "3"));
  cluster.run_for(sec(1));

  EXPECT_EQ(kv.get("counter"), std::optional<std::string>("3"));
}

TEST(KvStoreTest, KeysSpreadOverBucketsAndEndpoints) {
  shard::ShardedCluster cluster(kv_cluster_config());
  KvStore kv(cluster, KvStoreOptions{.buckets = 64, .first_file = 1});
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(kv.put("key-" + std::to_string(i), "v"));
  }
  cluster.run_for(sec(1));
  // 200 keys over 64 buckets must touch many buckets and several
  // coordinator endpoints.
  EXPECT_GT(cluster.placed_files(), 32u);
  EXPECT_GT(cluster.router().stats().coordinator_ops.size(), 3u);
}

TEST(KvStoreTest, WorkloadDrivesThroughputAndConverges) {
  shard::ShardedCluster cluster(kv_cluster_config());
  KvStore kv(cluster, KvStoreOptions{.buckets = 32, .first_file = 1});
  cluster.place(1, 32);

  KvWorkloadParams params;
  params.clients = 6;
  params.interval = msec(400);
  params.duration = sec(10);
  params.keyspace = 128;
  params.zipf_s = 0.9;
  KvWorkload workload(kv, cluster.sim(), params, 99);
  workload.start();
  cluster.run_for(sec(30));  // run + settle

  EXPECT_GT(workload.attempted(), 100u);
  EXPECT_EQ(kv.puts() + kv.blocked_puts(),
            workload.attempted() - kv.gets());
  std::size_t converged = 0;
  for (FileId f = 1; f <= 32; ++f) {
    if (cluster.converged(f)) ++converged;
  }
  // Concurrent clients on a Zipf keyspace conflict constantly; after the
  // settle window the groups must have resolved.
  EXPECT_GE(converged, 30u);
}

TEST(KvStoreTest, ZipfSkewsBucketLoad) {
  shard::ShardedCluster cluster(kv_cluster_config());
  KvStore kv(cluster, KvStoreOptions{.buckets = 256, .first_file = 1});

  KvWorkloadParams params;
  params.clients = 4;
  params.interval = msec(100);
  params.duration = sec(20);
  params.keyspace = 2048;
  params.zipf_s = 1.2;
  KvWorkload workload(kv, cluster.sim(), params, 7);
  workload.start();
  cluster.run_for(sec(21));

  // Heavy skew: far fewer buckets touched than ops issued.
  EXPECT_GT(workload.attempted(), 200u);
  EXPECT_LT(cluster.placed_files(), workload.attempted() / 2);
}

}  // namespace
}  // namespace idea::apps
