/// \file crash_recovery_test.cpp
/// \brief Crash-stop/restart fault model end to end: durable checkpoint
///        engines, delta-based recovery via anti-entropy, and routing
///        failover while members are down.
///
/// The acceptance scenario crashes k-1 of a file's replicas mid-workload
/// under scripted loss, restarts them, and demands byte-identical content
/// digests against a never-crashed control run of the same seed — crash
/// and recovery must be invisible in the converged state.  A second
/// scenario pins the O(delta) property: with a durable checkpoint the
/// restarted replica heals only the checkpoint→crash gap over the wire,
/// while the no-checkpoint control re-streams the whole log.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "client/session.hpp"
#include "shard/sharded_cluster.hpp"

namespace idea::shard {
namespace {

constexpr SimDuration kAePeriod = msec(500);

ShardedClusterConfig crash_config(std::uint64_t seed,
                                  replica::CheckpointEngineKind engine,
                                  double loss_rate) {
  ShardedClusterConfig cfg;
  cfg.endpoints = 6;
  cfg.replication = 3;
  cfg.seed = seed;
  cfg.transport.loss_rate = loss_rate;
  cfg.sync_sizes();
  cfg.idea.maxima = vv::TripleMaxima{50, 50, 50};
  // On-demand mode, no hint: resolution never runs, so the converged
  // contents depend only on the writes — crashing and healing replicas
  // cannot change what the control run converges to.
  cfg.idea.controller.mode = core::AdaptiveMode::kOnDemand;
  cfg.idea.controller.hint = 0.0;
  cfg.anti_entropy_period = kAePeriod;
  cfg.checkpoint.engine = engine;
  cfg.checkpoint.period = sec(1);
  return cfg;
}

bool replicas_identical(ShardedCluster& cluster, FileId file) {
  core::IdeaNode* coord = cluster.replica_at_rank(file, 0);
  if (coord == nullptr) return false;
  const auto k = static_cast<std::uint32_t>(cluster.group_of(file).size());
  for (std::uint32_t rank = 1; rank < k; ++rank) {
    core::IdeaNode* node = cluster.replica_at_rank(file, rank);
    if (node == nullptr) return false;
    if (node->store().evv().counts() != coord->store().evv().counts()) {
      return false;
    }
    if (node->store().content_digest() != coord->store().content_digest()) {
      return false;
    }
  }
  return true;
}

int periods_to_convergence(ShardedCluster& cluster, FileId file,
                           int max_periods) {
  for (int period = 0; period <= max_periods; ++period) {
    if (replicas_identical(cluster, file)) return period;
    cluster.run_for(kAePeriod);
  }
  return -1;
}

TEST(CrashRecoveryTest, KillRestartMatchesNeverCrashedControlByteExactly) {
  // k-1 = 2 of the file's three replicas crash mid-workload (staggered,
  // overlapping) under probabilistic wire loss; both restart and recover
  // from durable checkpoints + anti-entropy.  The converged digests must
  // equal a control run that never crashed anything.
  static constexpr FileId kFile = 3;
  constexpr int kWrites = 40;
  constexpr std::uint64_t kSeed = 2026;

  CrashReport crash1, crash2;
  RecoveryReport rec1, rec2;
  auto run = [&](bool faulted) {
    auto cluster = std::make_unique<ShardedCluster>(crash_config(
        kSeed, replica::CheckpointEngineKind::kIncremental, 0.05));
    cluster->ensure_open(kFile);
    const std::vector<NodeId> group = cluster->group_of(kFile);
    auto session = std::make_shared<client::ClientSession>(
        *cluster, client::SessionOptions{});
    // Writes route to the rank-0 coordinator, which never crashes here,
    // so both runs issue the identical update sequence.
    for (int i = 1; i <= kWrites; ++i) {
      cluster->sim().schedule_at(msec(250) * i, [session, i] {
        ASSERT_TRUE(session->put(kFile, "w" + std::to_string(i), 1.0).ok());
      });
    }
    if (faulted) {
      ShardedCluster* c = cluster.get();
      cluster->sim().schedule_at(sec(3) + msec(100), [c, group, &crash1] {
        crash1 = c->crash_endpoint(group[1]);
      });
      cluster->sim().schedule_at(sec(5) + msec(100), [c, group, &crash2] {
        crash2 = c->crash_endpoint(group[2]);
      });
      cluster->sim().schedule_at(sec(7) + msec(50), [c, group, &rec1] {
        rec1 = c->restart_endpoint(group[1]);
      });
      cluster->sim().schedule_at(sec(8) + msec(50), [c, group, &rec2] {
        rec2 = c->restart_endpoint(group[2]);
      });
    }
    cluster->run_until(sec(12));
    return cluster;
  };

  auto faulted = run(true);
  ASSERT_EQ(crash1.endpoint, faulted->group_of(kFile)[1]);
  EXPECT_GE(crash1.groups_affected, 1u);
  EXPECT_GT(crash1.volatile_updates_lost, 0u);
  EXPECT_GE(rec1.files_recovered, 1u);
  EXPECT_GE(rec1.checkpoint_files, 1u);
  EXPECT_GT(rec1.checkpoint_updates, 0u);
  EXPECT_GT(rec2.checkpoint_updates, 0u);
  EXPECT_EQ(rec1.incarnation, 1u);  // second life of the slot
  EXPECT_FALSE(faulted->is_crashed(crash1.endpoint));
  EXPECT_GT(faulted->transport().fault_dropped(), 0u)
      << "the crash windows never dropped anything — the fault script "
         "did not bite";

  const int periods = periods_to_convergence(*faulted, kFile, 8);
  ASSERT_NE(periods, -1) << "replicas diverged after crash+restart";

  auto control = run(false);
  const int control_periods = periods_to_convergence(*control, kFile, 8);
  ASSERT_NE(control_periods, -1);

  core::IdeaNode* control_coord = control->replica_at_rank(kFile, 0);
  ASSERT_NE(control_coord, nullptr);
  EXPECT_EQ(control_coord->store().update_count(),
            static_cast<std::size_t>(kWrites));
  const std::uint64_t expected_digest =
      control_coord->store().content_digest();
  for (std::uint32_t rank = 0; rank < 3; ++rank) {
    core::IdeaNode* node = faulted->replica_at_rank(kFile, rank);
    ASSERT_NE(node, nullptr) << "rank " << rank;
    EXPECT_EQ(node->store().update_count(),
              static_cast<std::size_t>(kWrites))
        << "rank " << rank;
    EXPECT_EQ(node->store().content_digest(), expected_digest)
        << "rank " << rank
        << ": post-recovery contents differ from the never-crashed control";
  }
}

TEST(CrashRecoveryTest, RecoveryStreamsTheDeltaNotTheLog) {
  // Same crash at the same instant; the only difference is whether a
  // durable checkpoint exists.  With one, the wire pays only for the
  // checkpoint→crash gap; without, anti-entropy re-streams everything.
  static constexpr FileId kFile = 3;
  constexpr int kWrites = 40;

  struct Outcome {
    RecoveryReport recovery;
    std::uint64_t repair_updates_applied = 0;
    std::uint64_t migrate_updates_applied = 0;
    std::size_t final_count = 0;
    bool converged = false;
  };
  auto run = [&](replica::CheckpointEngineKind engine) {
    ShardedCluster cluster(crash_config(7117, engine, /*loss_rate=*/0.0));
    cluster.ensure_open(kFile);
    const std::vector<NodeId> group = cluster.group_of(kFile);
    client::ClientSession session(cluster, {});
    for (int i = 1; i <= kWrites; ++i) {
      cluster.sim().schedule_at(msec(250) * i, [&session, i] {
        ASSERT_TRUE(session.put(kFile, "w" + std::to_string(i), 1.0).ok());
      });
    }
    Outcome out;
    // Crash shortly after the t=8s checkpoint: the durable image covers
    // ~32 writes, the downtime covers ~4 — that is the delta.
    cluster.sim().schedule_at(sec(8) + msec(300), [&cluster, group] {
      cluster.crash_endpoint(group[1]);
    });
    cluster.sim().schedule_at(sec(9) + msec(50), [&cluster, group, &out] {
      out.recovery = cluster.restart_endpoint(group[1]);
    });
    cluster.run_until(sec(12));
    for (int period = 0; period < 8 && !replicas_identical(cluster, kFile);
         ++period) {
      cluster.run_for(kAePeriod);
    }
    out.converged = replicas_identical(cluster, kFile);
    const ReplicaSyncStats& s = cluster.sync_agent(kFile, 1)->stats();
    out.repair_updates_applied = s.repair_updates_applied;
    out.migrate_updates_applied = s.migrate_updates_applied;
    out.final_count = cluster.replica_at_rank(kFile, 1)->store().update_count();
    return out;
  };

  const Outcome with_ckpt = run(replica::CheckpointEngineKind::kIncremental);
  const Outcome without = run(replica::CheckpointEngineKind::kNone);

  ASSERT_TRUE(with_ckpt.converged);
  ASSERT_TRUE(without.converged);
  EXPECT_EQ(with_ckpt.final_count, static_cast<std::size_t>(kWrites));
  EXPECT_EQ(without.final_count, static_cast<std::size_t>(kWrites));

  // The checkpointed recovery reloaded most of the log from durable
  // storage without touching the wire...
  EXPECT_GE(with_ckpt.recovery.checkpoint_updates, 28u);
  EXPECT_LE(with_ckpt.recovery.gap_updates, 10u);
  // ...so its repair traffic is the delta, not the history.
  EXPECT_LE(with_ckpt.repair_updates_applied, 10u);
  // The no-checkpoint control restarts empty and re-streams ~everything.
  EXPECT_EQ(without.recovery.checkpoint_files, 0u);
  EXPECT_EQ(without.recovery.checkpoint_updates, 0u);
  EXPECT_GE(without.repair_updates_applied, 30u);
  EXPECT_GT(without.repair_updates_applied,
            3 * with_ckpt.repair_updates_applied);
  // Recovery never uses the migration stream.
  EXPECT_EQ(with_ckpt.migrate_updates_applied, 0u);
  EXPECT_EQ(without.migrate_updates_applied, 0u);
}

TEST(CrashRecoveryTest, CoordinatorCrashFailsOverAndRestartsWithoutSeqReuse) {
  constexpr FileId kFile = 5;
  ShardedCluster cluster(crash_config(
      909, replica::CheckpointEngineKind::kIncremental, /*loss_rate=*/0.0));
  cluster.ensure_open(kFile);
  const std::vector<NodeId> group = cluster.group_of(kFile);
  client::ClientSession session(cluster, {});

  // Phase 1: ten writes through the real coordinator (rank 0).
  for (int i = 1; i <= 10; ++i) {
    cluster.sim().schedule_at(msec(300) * i, [&session, i] {
      ASSERT_TRUE(session.put(kFile, "a" + std::to_string(i), 1.0).ok());
    });
  }
  cluster.run_until(sec(3) + msec(400));
  cluster.crash_endpoint(group[0]);
  EXPECT_TRUE(cluster.is_crashed(group[0]));

  // Phase 2: writes and strong reads keep working through the acting
  // coordinator (lowest alive rank).
  for (int i = 1; i <= 10; ++i) {
    cluster.sim().schedule_at(sec(3) + msec(500) + msec(300) * i,
                              [&session, i] {
                                ASSERT_TRUE(session
                                                .put(kFile,
                                                     "b" + std::to_string(i),
                                                     1.0)
                                                .ok());
                              });
  }
  cluster.run_until(sec(6) + msec(600));
  const client::OpHandle<client::ReadResult> read =
      session.read(kFile, client::ConsistencyLevel::strong());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->served_by, group[1]) << "strong read must fail over to "
                                          "the acting coordinator";
  EXPECT_EQ(cluster.router().stats().failover_writes, 10u);

  // Phase 3: restart.  The old coordinator re-adopts its own writer
  // history (checkpoint + survivor reconciliation) and resumes rank 0.
  const RecoveryReport rec = cluster.restart_endpoint(group[0]);
  EXPECT_GE(rec.checkpoint_files, 1u);
  EXPECT_GT(rec.checkpoint_updates + rec.reconciled_updates, 0u);
  core::IdeaNode* restarted = cluster.replica_at_rank(kFile, 0);
  ASSERT_NE(restarted, nullptr);
  // Sequence continuation: its next write must be seq 11, not a reused 1.
  EXPECT_EQ(restarted->store().local_seq(), 10u);

  cluster.sim().schedule_at(cluster.sim().now() + msec(100), [&session] {
    ASSERT_TRUE(session.put(kFile, "post", 1.0).ok());
  });
  cluster.run_for(sec(1));
  const replica::Update* post =
      restarted->store().find(replica::UpdateKey{0, 11});
  ASSERT_NE(post, nullptr);
  EXPECT_EQ(post->content, "post");

  for (int period = 0; period < 10 && !replicas_identical(cluster, kFile);
       ++period) {
    cluster.run_for(kAePeriod);
  }
  ASSERT_TRUE(replicas_identical(cluster, kFile));
  EXPECT_EQ(restarted->store().update_count(), 21u);
}

TEST(CrashRecoveryTest, CheckpointEnginesAndDurableStorageSemantics) {
  ShardedCluster cluster(crash_config(
      44, replica::CheckpointEngineKind::kIncremental, /*loss_rate=*/0.0));
  constexpr FileId kFile = 2;
  cluster.ensure_open(kFile);
  const std::vector<NodeId> group = cluster.group_of(kFile);
  client::ClientSession session(cluster, {});
  ASSERT_TRUE(session.put(kFile, "x", 1.0).ok());
  cluster.run_for(msec(200));  // let the push land everywhere

  replica::DurableStorage& storage = cluster.durable_storage();
  ASSERT_NE(cluster.checkpoint_engine(), nullptr);
  EXPECT_STREQ(cluster.checkpoint_engine()->name(), "incremental");

  // First manual pass persists the dirty replica; the second, with no
  // writes in between, skips it as clean.
  cluster.checkpoint_endpoint(group[0]);
  const replica::CheckpointRecord* first = storage.latest(group[0], kFile);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->epoch, 1u);
  EXPECT_EQ(first->updates.size(), 1u);
  EXPECT_EQ(first->members, group);
  EXPECT_GT(first->bytes, 0u);

  const std::uint64_t written_before = storage.records_written();
  cluster.checkpoint_endpoint(group[0]);
  EXPECT_EQ(storage.records_written(), written_before)
      << "clean replica must not be re-persisted by the incremental engine";
  EXPECT_GT(cluster.checkpoint_engine()->totals().files_clean, 0u);

  // A new write dirties it again; retention keeps the newest `retain`.
  ASSERT_TRUE(session.put(kFile, "y", 1.0).ok());
  cluster.checkpoint_endpoint(group[0]);
  ASSERT_TRUE(session.put(kFile, "z", 1.0).ok());
  cluster.checkpoint_endpoint(group[0]);
  const replica::CheckpointRecord* newest = storage.latest(group[0], kFile);
  ASSERT_NE(newest, nullptr);
  EXPECT_EQ(newest->epoch, 3u);
  EXPECT_EQ(newest->updates.size(), 3u);
  EXPECT_LE(storage.record_count(),
            static_cast<std::size_t>(cluster.config().checkpoint.retain) *
                cluster.config().endpoints * 4);

  // The periodic timers are armed for every endpoint (enabled() config),
  // so simply running the clock also writes records for the other ranks.
  cluster.run_for(sec(2) + msec(100));
  EXPECT_NE(storage.latest(group[1], kFile), nullptr);
  EXPECT_NE(storage.latest(group[2], kFile), nullptr);
}

}  // namespace
}  // namespace idea::shard
