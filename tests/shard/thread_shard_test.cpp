/// \file thread_shard_test.cpp
/// \brief The shard layer running over the wall-clock ThreadTransport.
///
/// The shard stack was sim-only until now (ROADMAP follow-up).  This test
/// assembles the same pieces a ShardedCluster wires — IdeaService
/// endpoints, per-file rank-translating GroupTransports, ReplicaSyncAgents
/// with anti-entropy — over net::ThreadTransport, so group replication and
/// digest/repair healing are exercised under real concurrency instead of
/// the discrete-event kernel.  All protocol activity runs on the
/// transport's dispatcher thread; the test thread only schedules work via
/// call_after and joins the timeline with wait_idle (the nodes are not
/// start()ed, so no periodic timers keep the queue busy forever).

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/service.hpp"
#include "net/thread_transport.hpp"
#include "shard/group_transport.hpp"
#include "shard/replica_sync.hpp"
#include "sim/latency.hpp"

namespace idea::shard {
namespace {

struct FileStack {
  std::vector<NodeId> members;
  std::vector<std::unique_ptr<GroupTransport>> transports;
  std::vector<std::unique_ptr<ReplicaSyncAgent>> sync;
};

/// Mirror of ShardedCluster::open_group over an arbitrary transport.
FileStack open_group(
    FileId file, std::vector<NodeId> members, net::Transport& edge,
    std::vector<std::unique_ptr<core::IdeaService>>& services) {
  core::IdeaConfig idea;
  idea.maxima = vv::TripleMaxima{20, 20, 20};
  const auto k = static_cast<std::uint32_t>(members.size());
  idea.ransub.nodes = k;
  idea.gossip.nodes = k;
  idea.two_layer.all_nodes = k;

  FileStack stack;
  stack.members = std::move(members);
  for (std::uint32_t rank = 0; rank < k; ++rank) {
    auto transport =
        std::make_unique<GroupTransport>(edge, stack.members, rank);
    core::IdeaNode& node = services[stack.members[rank]]->open_via(
        file, idea, *transport, rank, transport.get());
    transport->set_sink(&node.dispatcher());
    stack.sync.push_back(
        std::make_unique<ReplicaSyncAgent>(node, *transport, k));
    stack.transports.push_back(std::move(transport));
  }
  return stack;
}

TEST(ThreadShardTest, GroupReplicationOverThreadTransport) {
  constexpr std::uint32_t kEndpoints = 5;
  sim::PlanetLabParams lat;
  lat.nodes = kEndpoints;
  sim::PlanetLabLatency latency(lat);
  net::ThreadTransportOptions topt;
  topt.time_scale = 0.001;  // 1000x faster than the virtual timeline
  net::ThreadTransport transport(latency, topt);

  // Destruction order (reverse of declaration): agents release dispatcher
  // routes before services destroy the nodes; group transports outlive
  // the nodes, which cancel timers through them; the transport outlives
  // everything (it joins its dispatcher thread on destruction).
  std::vector<std::unique_ptr<core::IdeaService>> services;
  for (NodeId n = 0; n < kEndpoints; ++n) {
    services.push_back(std::make_unique<core::IdeaService>(
        n, transport, mix64(0xABC + n)));
  }
  std::vector<FileStack> stacks;
  stacks.push_back(open_group(1, {0, 2, 4}, transport, services));
  stacks.push_back(open_group(2, {1, 3, 0}, transport, services));

  // Writes execute on the dispatcher thread, like every protocol callback.
  for (int i = 0; i < 8; ++i) {
    transport.call_after(msec(10) * (i + 1), [&stacks, i] {
      stacks[0].sync[0]->put("f1-" + std::to_string(i), 1.0);
      stacks[1].sync[0]->put("f2-" + std::to_string(i), 2.0);
    });
  }
  ASSERT_TRUE(transport.wait_idle(sec(3600)));

  for (FileId file : {FileId{1}, FileId{2}}) {
    const FileStack& stack = stacks[file - 1];
    const std::uint64_t digest = services[stack.members[0]]
                                     ->find(file)
                                     ->store()
                                     .content_digest();
    for (std::size_t rank = 0; rank < stack.members.size(); ++rank) {
      core::IdeaNode* node = services[stack.members[rank]]->find(file);
      ASSERT_NE(node, nullptr);
      EXPECT_EQ(node->store().update_count(), 8u)
          << "file " << file << " rank " << rank;
      EXPECT_EQ(node->store().content_digest(), digest)
          << "file " << file << " rank " << rank;
    }
  }
  EXPECT_GT(transport.counters().messages_of("shard.replicate"), 0u);

  // Teardown discipline mirrors ShardedCluster::~ShardedCluster.
  for (FileStack& stack : stacks) stack.sync.clear();
  services.clear();
}

TEST(ThreadShardTest, AntiEntropyHealsColdReplicaOverThreadTransport) {
  constexpr FileId kFile = 7;
  constexpr int kUpdates = 5;
  sim::PlanetLabParams lat;
  lat.nodes = 3;
  sim::PlanetLabLatency latency(lat);
  net::ThreadTransportOptions topt;
  topt.time_scale = 0.001;
  net::ThreadTransport transport(latency, topt);

  std::vector<std::unique_ptr<core::IdeaService>> services;
  for (NodeId n = 0; n < 3; ++n) {
    services.push_back(std::make_unique<core::IdeaService>(
        n, transport, mix64(0xD1CE + n)));
  }
  FileStack stack = open_group(kFile, {0, 1, 2}, transport, services);

  // Seed divergence without touching the network: rank 0 applies updates
  // straight into its store, as if every replication push had been lost.
  transport.call_after(msec(1), [&transport, &services] {
    core::IdeaNode* coord = services[0]->find(kFile);
    for (int i = 0; i < kUpdates; ++i) {
      coord->store().apply_local(transport.local_time(0),
                                 "lost-" + std::to_string(i), 1.0);
    }
  });
  ASSERT_TRUE(transport.wait_idle(sec(3600)));
  EXPECT_EQ(services[1]->find(kFile)->store().update_count(), 0u);

  // Anti-entropy digests repair the cold replicas within a few periods.
  transport.call_after(msec(1), [&stack] {
    for (auto& agent : stack.sync) agent->start_anti_entropy(msec(100));
  });
  // ~10 virtual periods; at time_scale 0.001 this is ~1 ms real, so give
  // the wall clock a generous real-time margin instead (thousands of
  // periods even on a loaded CI machine).
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  for (auto& agent : stack.sync) agent->stop_anti_entropy();
  ASSERT_TRUE(transport.wait_idle(sec(3600)));

  for (std::size_t rank = 0; rank < 3; ++rank) {
    core::IdeaNode* node = services[rank]->find(kFile);
    EXPECT_EQ(node->store().update_count(),
              static_cast<std::size_t>(kUpdates))
        << "rank " << rank;
  }
  EXPECT_GT(stack.sync[1]->stats().repair_updates_applied, 0u);

  stack.sync.clear();
  services.clear();
}

}  // namespace
}  // namespace idea::shard
