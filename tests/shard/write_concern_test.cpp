/// \file write_concern_test.cpp
/// \brief WriteConcern{w} end to end: pending ack handles, sloppy-quorum
///        hinted handoff, give-up anti-entropy, and the R+W>N oracle.
///
/// The oracle assertions are the acceptance criteria of the write-side
/// half of the tunable-consistency matrix:
///  * a w=majority put resolves only after the coordinator confirms the
///    peer applies (OpHandle pending semantics);
///  * a sloppy-quorum write hints a crashed member at a live stand-in and
///    the hint drains exactly once when the member restarts;
///  * an exhausted resend budget is never silent — give-up fires targeted
///    anti-entropy digests, so the group converges with periodic AE off;
///  * every w-acked write survives any single-endpoint crash among the
///    group (coordinator included), observed through majority quorum
///    reads (R + W > N);
///  * under scripted loss plus a crash/restart cycle, a Quorum{majority}
///    read never misses a w=majority-acked write.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "client/session.hpp"
#include "shard/sharded_cluster.hpp"

namespace idea::client {
namespace {

shard::ShardedClusterConfig concern_config(std::uint64_t seed,
                                           SimDuration anti_entropy = 0) {
  shard::ShardedClusterConfig cfg;
  cfg.endpoints = 6;
  cfg.replication = 3;
  cfg.seed = seed;
  cfg.sync_sizes();
  cfg.idea.maxima = vv::TripleMaxima{100, 100, 100};
  // On-demand mode, no hint: resolution never blocks writes, so acked
  // writes are exactly the issued writes and the oracles stay simple.
  cfg.idea.controller.mode = core::AdaptiveMode::kOnDemand;
  cfg.idea.controller.hint = 0.0;
  cfg.anti_entropy_period = anti_entropy;
  return cfg;
}

/// Independent staleness oracle: versions the `endpoint` replica of
/// `file` is missing relative to the acting coordinator, right now.
std::uint64_t versions_behind(shard::ShardedCluster& cluster, FileId file,
                              NodeId endpoint) {
  core::IdeaNode* coordinator = cluster.replica_at_rank(file, 0);
  core::IdeaNode* node = cluster.replica(file, endpoint);
  if (coordinator == nullptr || node == nullptr) return 0;
  return coordinator->store()
      .updates_ahead_of(node->store().evv().counts())
      .size();
}

TEST(WriteConcernTest, MajorityPutResolvesOnlyAfterPeerAck) {
  shard::ShardedCluster cluster(concern_config(11));
  Client client(cluster);
  ClientSession session = client.session(
      {.write_concern = WriteConcern::majority(), .origin = 1});

  const FileId file = 7;
  const OpHandle<WriteAck> h = session.put(file, "wmaj", 1.0);
  // The handle is pending: with w = 2 of 3 the coordinator's local apply
  // is not enough, and the peer ack needs a round trip on the sim clock.
  EXPECT_FALSE(h.resolved());
  EXPECT_FALSE(h.done());

  bool fired = false;
  h.on_complete([&](const OpHandle<WriteAck>& done) {
    fired = true;
    EXPECT_TRUE(done->w_satisfied);
  });
  cluster.run_for(sec(1));

  ASSERT_TRUE(h.resolved());
  EXPECT_TRUE(h.ok());
  EXPECT_TRUE(fired);
  EXPECT_TRUE(h->applied);
  EXPECT_TRUE(h->w_satisfied);
  EXPECT_GE(h->acks, 2u);  // coordinator + at least one peer
  EXPECT_EQ(h->hinted, 0u);
  EXPECT_EQ(h->coordinator, cluster.coordinator_endpoint(file));
  EXPECT_GT(h.latency(), 0);

  EXPECT_EQ(session.stats().wack_puts, 1u);
  EXPECT_EQ(session.stats().puts, 1u);
  EXPECT_EQ(session.stats().wack_failed_puts, 0u);
  EXPECT_EQ(cluster.router().stats().wack_writes, 1u);
  const shard::ReplicaSyncAgent* agent = cluster.coordinator(file).first;
  ASSERT_NE(agent, nullptr);
  EXPECT_EQ(agent->stats().wack_tracked, 1u);
  EXPECT_EQ(agent->stats().wack_satisfied, 1u);
  EXPECT_GE(agent->stats().acks_received, 1u);
}

TEST(WriteConcernTest, SloppyQuorumHintsCrashedMemberAndDrainsOnce) {
  shard::ShardedCluster cluster(concern_config(22));
  Client client(cluster);
  ClientSession session =
      client.session({.write_concern = WriteConcern::all(), .origin = 0});

  const FileId file = 9;
  ASSERT_TRUE(session.open(file));
  const std::vector<NodeId> group = cluster.group_of(file);
  ASSERT_EQ(group.size(), 3u);
  const NodeId dark = group[2];
  cluster.crash_endpoint(dark);

  // w = all of 3 with one member dark: the write must count a hinted
  // stand-in toward w (sloppy quorum) and still resolve satisfied.
  const OpHandle<WriteAck> h = session.put(file, "sloppy", 1.0);
  cluster.run_for(sec(1));
  ASSERT_TRUE(h.resolved());
  EXPECT_TRUE(h.ok());
  EXPECT_TRUE(h->w_satisfied);
  EXPECT_EQ(h->acks, 2u);    // both live members
  EXPECT_EQ(h->hinted, 1u);  // the dark one, via its stand-in
  EXPECT_EQ(session.stats().hinted_puts, 1u);

  // The hint is durably parked at a live non-member endpoint.
  EXPECT_EQ(cluster.hint_store().depth(), 1u);
  EXPECT_EQ(cluster.hint_store().depth_for(dark), 1u);
  const replica::HintedWrite& hint = cluster.hint_store().hints().front();
  EXPECT_EQ(hint.target, dark);
  EXPECT_TRUE(cluster.has_endpoint(hint.stand_in));
  for (NodeId member : group) EXPECT_NE(hint.stand_in, member);
  EXPECT_EQ(cluster.router().stats().sloppy_writes, 1u);
  EXPECT_EQ(cluster.router().stats().hinted_writes, 1u);

  // Restart: the hint drains exactly once.  The batch imports into the
  // acting coordinator (which already applied it — hence the duplicate
  // count, the exactly-once evidence) and the targeted digest carries it
  // to the restarted member over the ordinary repair path.
  const shard::RecoveryReport rec = cluster.restart_endpoint(dark);
  EXPECT_EQ(rec.hinted_updates, 1u);
  EXPECT_EQ(rec.hinted_duplicates, 1u);
  EXPECT_EQ(cluster.hint_store().depth(), 0u);
  EXPECT_EQ(cluster.hint_store().stats().drained, 1u);

  cluster.run_for(sec(2));
  EXPECT_EQ(versions_behind(cluster, file, dark), 0u)
      << "hinted write failed to drain to the restarted member";
  // Exactly once: the restarted replica holds the same log as the
  // coordinator, no duplicated applies.
  EXPECT_EQ(cluster.replica(file, dark)->store().update_count(),
            cluster.replica_at_rank(file, 0)->store().update_count());
}

TEST(WriteConcernTest, MigrationReMintsHintsForStillCrashedMembers) {
  // Mint -> migrate -> drain: a hint parked for a crashed member must
  // survive a membership change that reshapes the member's group.  The
  // migration re-mints it at a fresh stand-in (outside the new group)
  // instead of dropping it with the old group, and the restarted member
  // still drains the write exactly once.
  shard::ShardedCluster cluster(concern_config(66));
  Client client(cluster);
  ClientSession session =
      client.session({.write_concern = WriteConcern::all(), .origin = 0});

  const FileId file = 9;
  ASSERT_TRUE(session.open(file));
  const std::vector<NodeId> group = cluster.group_of(file);
  ASSERT_EQ(group.size(), 3u);
  const NodeId dark = group[2];
  cluster.crash_endpoint(dark);
  const OpHandle<WriteAck> h = session.put(file, "owed", 1.0);
  cluster.run_for(sec(1));
  ASSERT_TRUE(h.ok());
  ASSERT_EQ(h->hinted, 1u);
  ASSERT_EQ(cluster.hint_store().depth_for(dark), 1u);

  // A live member leaves while the debt is outstanding.
  cluster.remove_endpoint(group[1]);
  const std::vector<NodeId> regrouped = cluster.group_of(file);
  ASSERT_NE(std::find(regrouped.begin(), regrouped.end(), dark),
            regrouped.end())
      << "seed layout changed: the crashed member left the group and the "
         "re-mint path is not exercised; pick another seed";
  EXPECT_GE(cluster.hint_store().stats().reminted, 1u);
  EXPECT_EQ(cluster.hint_store().depth_for(dark), 1u);
  const replica::HintedWrite& hint = cluster.hint_store().hints().front();
  EXPECT_EQ(hint.target, dark);
  EXPECT_TRUE(cluster.has_endpoint(hint.stand_in));
  for (NodeId member : regrouped) EXPECT_NE(hint.stand_in, member);

  // The debt pays out after the migration exactly as it would have
  // before it.
  const shard::RecoveryReport rec = cluster.restart_endpoint(dark);
  EXPECT_EQ(rec.hinted_updates, 1u);
  EXPECT_EQ(cluster.hint_store().depth(), 0u);
  EXPECT_EQ(cluster.hint_store().stats().drained, 1u);
  cluster.run_for(sec(2));
  EXPECT_EQ(versions_behind(cluster, file, dark), 0u)
      << "re-minted hint failed to drain to the restarted member";
}

TEST(WriteConcernTest, MigrationRetiresHintsWhenTheTargetLeavesTheGroup) {
  // The other half of the migration contract: when a membership change
  // moves the hinted member OUT of the file's replica group, its debt is
  // moot — the hints are retired, not re-minted — but the write is NOT
  // lost: the union snapshot folds parked hints in, so the migrated
  // group still serves it.  (Seed 60 / file 5: the joining endpoint
  // displaces the crashed member from the replica walk.)
  shard::ShardedCluster cluster(concern_config(60));
  Client client(cluster);
  ClientSession session =
      client.session({.write_concern = WriteConcern::all(), .origin = 0});

  const FileId file = 5;
  ASSERT_TRUE(session.open(file));
  const std::vector<NodeId> group = cluster.group_of(file);
  ASSERT_EQ(group.size(), 3u);
  const NodeId dark = group[2];
  cluster.crash_endpoint(dark);
  const OpHandle<WriteAck> h = session.put(file, "folded", 1.0);
  cluster.run_for(sec(1));
  ASSERT_TRUE(h.ok());
  ASSERT_EQ(cluster.hint_store().depth_for(dark), 1u);

  cluster.add_endpoint();
  const std::vector<NodeId> regrouped = cluster.group_of(file);
  ASSERT_EQ(std::find(regrouped.begin(), regrouped.end(), dark),
            regrouped.end())
      << "seed layout changed: the crashed member kept its slot and the "
         "retire path is not exercised; pick another seed";
  EXPECT_GE(cluster.hint_store().stats().retired, 1u);
  EXPECT_EQ(cluster.hint_store().depth(), 0u);
  EXPECT_EQ(cluster.hint_store().stats().reminted, 0u);

  // The write survives in the reshaped group.
  cluster.run_for(sec(1));
  ClientSession reader =
      client.session({.level = ConsistencyLevel::quorum(), .origin = 0});
  const OpHandle<ReadResult> view = reader.read(file);
  ASSERT_TRUE(view.ok());
  std::set<std::string> seen;
  for (const replica::Update& u : *view->updates) seen.insert(u.content);
  EXPECT_TRUE(seen.count("folded") > 0)
      << "hinted write lost when its target departed";
}

TEST(WriteConcernTest, GiveUpFiresTargetedAntiEntropy) {
  // Satellite: an exhausted resend budget used to leave the group
  // silently diverged when periodic anti-entropy was off.  Give-up now
  // fires a targeted digest at every still-unacked rank, so the group
  // converges as soon as the network lets the digest through.
  shard::ShardedClusterConfig cfg = concern_config(33);
  cfg.replication_resend_timeout = msec(200);
  cfg.replication_max_resends = 2;
  shard::ShardedCluster cluster(cfg);
  Client client(cluster);
  ClientSession session = client.session(
      {.write_concern = WriteConcern::majority(), .origin = 2});

  const FileId file = 5;
  ASSERT_TRUE(session.open(file));
  const std::vector<NodeId> group = cluster.group_of(file);
  ASSERT_EQ(group.size(), 3u);
  cluster.run_for(sec(1));

  // Cut the coordinator off: the push and both resends (at 200/400 ms)
  // drop, the budget exhausts at ~600 ms, and the write-concern fails.
  cluster.transport().partition(group[0], group[1]);
  cluster.transport().partition(group[0], group[2]);
  const OpHandle<WriteAck> h = session.put(file, "abandoned", 1.0);
  cluster.run_for(msec(550));
  EXPECT_FALSE(h.resolved()) << "budget should not be exhausted yet";
  cluster.transport().heal_all_partitions();
  cluster.run_for(sec(1));

  ASSERT_TRUE(h.resolved());
  EXPECT_FALSE(h.ok());
  EXPECT_TRUE(h->applied) << "the coordinator itself applied the write";
  EXPECT_FALSE(h->w_satisfied);
  EXPECT_EQ(h->acks, 1u);
  EXPECT_EQ(session.stats().wack_failed_puts, 1u);

  const shard::ReplicaSyncAgent* agent = cluster.coordinator(file).first;
  ASSERT_NE(agent, nullptr);
  EXPECT_GE(agent->stats().resend_gaveups, 1u);
  EXPECT_GE(agent->stats().gaveup_ae_digests, 2u);  // both unacked ranks
  EXPECT_GE(agent->stats().wack_failed, 1u);

  // The divergence healed through the give-up digests alone: periodic
  // anti-entropy is off in this deployment.
  EXPECT_EQ(versions_behind(cluster, file, group[1]), 0u);
  EXPECT_EQ(versions_behind(cluster, file, group[2]), 0u);
}

TEST(WriteConcernTest, WAckedWriteSurvivesAnySingleEndpointCrash) {
  // Property: with w = majority and r = majority over k = 3 (R + W > N),
  // an acked write survives the crash of ANY single endpoint among the
  // group — including the coordinator — because every read quorum
  // intersects the write's ack set.
  shard::ShardedCluster cluster(concern_config(44, /*anti_entropy=*/msec(500)));
  Client client(cluster);
  ClientSession writer = client.session(
      {.write_concern = WriteConcern::majority(), .origin = 0});

  const FileId file = 3;
  ASSERT_TRUE(writer.open(file));
  const std::vector<NodeId> group = cluster.group_of(file);
  ASSERT_EQ(group.size(), 3u);

  std::set<std::string> acked;
  for (std::size_t rank = 0; rank < group.size(); ++rank) {
    const std::string content = "surv" + std::to_string(rank);
    const OpHandle<WriteAck> h = writer.put(file, content, 1.0);
    cluster.run_for(sec(1));
    ASSERT_TRUE(h.resolved());
    ASSERT_TRUE(h.ok()) << "w=majority put should ack with all members up";
    acked.insert(content);

    cluster.crash_endpoint(group[rank]);
    cluster.run_for(msec(100));

    ClientSession reader = client.session(
        {.level = ConsistencyLevel::quorum(), .origin = 1});
    const OpHandle<ReadResult> view = reader.read(file);
    ASSERT_TRUE(view.ok());
    std::set<std::string> seen;
    for (const replica::Update& u : *view->updates) seen.insert(u.content);
    for (const std::string& c : acked) {
      EXPECT_TRUE(seen.count(c) > 0)
          << "acked write \"" << c << "\" lost after crashing rank " << rank;
    }

    cluster.restart_endpoint(group[rank]);
    cluster.run_for(sec(2));  // checkpoint gap heals via anti-entropy
  }
}

TEST(WriteConcernTest, QuorumReadNeverMissesAckedWriteUnderLossAndCrash) {
  // The R+W>N oracle under adversarial conditions: scripted loss windows
  // plus a mid-run crash/restart of a group member.  Every put whose
  // handle resolved satisfied must appear in every subsequent
  // Quorum{majority} view, at all times.
  shard::ShardedCluster cluster(concern_config(55, /*anti_entropy=*/msec(500)));
  Client client(cluster);
  ClientSession writer = client.session(
      {.write_concern = WriteConcern::majority(), .origin = 0});
  ClientSession reader =
      client.session({.level = ConsistencyLevel::quorum(), .origin = 3});

  const FileId file = 11;
  ASSERT_TRUE(writer.open(file));
  const std::vector<NodeId> group = cluster.group_of(file);
  ASSERT_EQ(group.size(), 3u);

  // Full-loss windows long enough to exhaust some write budgets.
  cluster.transport().add_drop_window(msec(900), msec(1900));
  cluster.transport().add_drop_window(sec(4), sec(5));

  std::vector<std::pair<OpHandle<WriteAck>, std::string>> in_flight;
  std::set<std::string> acked;
  for (int i = 0; i < 30; ++i) {
    const std::string content = "rw" + std::to_string(i);
    in_flight.emplace_back(writer.put(file, content, 1.0), content);
    cluster.run_for(msec(200));

    if (i == 10) cluster.crash_endpoint(group[1]);
    if (i == 20) {
      cluster.restart_endpoint(group[1]);
      cluster.run_for(sec(1));
    }

    // Harvest: only writes whose concern resolved satisfied enter the
    // oracle — an unsatisfied (given-up) write promises nothing.
    for (const auto& [h, c] : in_flight) {
      if (h.resolved() && h->w_satisfied) acked.insert(c);
    }

    const OpHandle<ReadResult> view = reader.read(file);
    ASSERT_TRUE(view.ok());
    EXPECT_GE(view->replicas_contacted, 2u);
    std::set<std::string> seen;
    for (const replica::Update& u : *view->updates) seen.insert(u.content);
    for (const std::string& c : acked) {
      EXPECT_TRUE(seen.count(c) > 0)
          << "w-acked write \"" << c << "\" missing from quorum view at op "
          << i;
    }
  }
  EXPECT_GE(acked.size(), 10u) << "oracle exercised too few acked writes";
  EXPECT_GT(cluster.router().stats().wack_writes, 0u);
}

}  // namespace
}  // namespace idea::client
