/// \file determinism_test.cpp
/// \brief Fixed-seed replay regression: the hot-path representation
///        (interned message types, shared payloads, pooled simulator
///        events, flat version vectors) must not change protocol behavior.
///
/// The expectations below were captured from the PRE-refactor
/// implementation (PR 1 seed: std::string message types, std::any payloads,
/// unordered_set lazy deletion in the simulator, std::map version vectors)
/// by running exactly this configuration and recording per-type message
/// counts, applied writes, convergence and the order-sensitive content
/// digest of every coordinator replica.  Any divergence — one extra
/// message, one reordered event, one different resolution outcome — fails
/// the test.  If a future PR changes protocol behavior *on purpose*, it
/// must re-capture these goldens and say so.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "apps/kvstore.hpp"
#include "shard/sharded_cluster.hpp"

namespace idea::shard {
namespace {

struct ReplayResult {
  std::uint64_t puts = 0;
  std::size_t converged = 0;
  std::uint64_t digest = 0;
  std::uint64_t logical_messages = 0;
  std::uint64_t wire_messages = 0;
  std::map<std::string, std::uint64_t> per_type;
};

ReplayResult replay(std::uint64_t seed) {
  constexpr std::uint32_t kFiles = 120;
  ShardedClusterConfig cfg;
  cfg.endpoints = 8;
  cfg.replication = 3;
  cfg.batching = true;
  cfg.seed = seed;
  cfg.sync_sizes();
  cfg.idea.maxima = vv::TripleMaxima{100, 100, 100};
  cfg.idea.controller.mode = core::AdaptiveMode::kHintBased;
  cfg.idea.controller.hint = 0.85;
  cfg.idea.detection_period = sec(2);
  ShardedCluster cluster(cfg);
  cluster.place(1, kFiles);

  apps::KvStore kv(cluster,
                   apps::KvStoreOptions{.buckets = kFiles, .first_file = 1});
  apps::KvWorkloadParams wl;
  wl.clients = 16;
  wl.interval = msec(250);
  wl.duration = sec(6);
  wl.keyspace = 480;
  wl.zipf_s = 0.9;
  apps::KvWorkload workload(kv, cluster.sim(), wl, seed ^ 0xBEEF);
  workload.start();
  cluster.run_for(sec(6) + sec(10));

  ReplayResult r;
  r.puts = kv.puts();
  for (FileId f = 1; f <= kFiles; ++f) {
    if (cluster.converged(f)) ++r.converged;
    core::IdeaNode* coord = cluster.replica_at_rank(f, 0);
    if (coord != nullptr) {
      r.digest ^= coord->store().content_digest() * (f * 2654435761ull);
    }
  }
  r.logical_messages = cluster.batching()->stats().logical_messages;
  r.wire_messages = cluster.wire_counters().total_messages();
  r.per_type = cluster.batching()->counters().by_type();
  return r;
}

using Golden = std::map<std::string, std::uint64_t>;

TEST(ShardedClusterDeterminism, Seed2007MatchesPreRefactorRun) {
  const ReplayResult r = replay(2007);
  EXPECT_EQ(r.puts, 387u);
  EXPECT_EQ(r.converged, 120u);
  EXPECT_EQ(r.digest, 0xd4cf90538821fb05ull);
  EXPECT_EQ(r.logical_messages, 10966u);
  EXPECT_EQ(r.wire_messages, 2355u);
  const Golden expected{
      {"detect.probe", 3200},     {"detect.reply", 2672},
      {"gossip.push", 2160},      {"ransub.collect", 720},
      {"ransub.distribute", 720}, {"ransub.epoch", 720},
      {"shard.replicate", 774},
  };
  EXPECT_EQ(r.per_type, expected);
}

TEST(ShardedClusterDeterminism, Seed555MatchesPreRefactorRun) {
  const ReplayResult r = replay(555);
  EXPECT_EQ(r.puts, 390u);
  EXPECT_EQ(r.converged, 120u);
  EXPECT_EQ(r.digest, 0xb8bd153ba9842aa6ull);
  EXPECT_EQ(r.logical_messages, 11140u);
  EXPECT_EQ(r.wire_messages, 2348u);
  const Golden expected{
      {"detect.probe", 3296},     {"detect.reply", 2744},
      {"gossip.push", 2160},      {"ransub.collect", 720},
      {"ransub.distribute", 720}, {"ransub.epoch", 720},
      {"shard.replicate", 780},
  };
  EXPECT_EQ(r.per_type, expected);
}

TEST(ShardedClusterDeterminism, ReplayIsInternallyReproducible) {
  // Same seed, same process: two replays must agree with themselves (guards
  // against nondeterminism that global interning state could introduce).
  const ReplayResult a = replay(99);
  const ReplayResult b = replay(99);
  EXPECT_EQ(a.puts, b.puts);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.logical_messages, b.logical_messages);
  EXPECT_EQ(a.per_type, b.per_type);
}

}  // namespace
}  // namespace idea::shard
