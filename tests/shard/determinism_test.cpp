/// \file determinism_test.cpp
/// \brief Fixed-seed replay regression: the hot-path representation
///        (interned message types, shared payloads, pooled simulator
///        events, flat version vectors) must not change protocol behavior.
///
/// The expectations below were captured from the PRE-refactor
/// implementation (PR 1 seed: std::string message types, std::any payloads,
/// unordered_set lazy deletion in the simulator, std::map version vectors)
/// by running exactly this configuration and recording per-type message
/// counts, applied writes, convergence and the order-sensitive content
/// digest of every coordinator replica.  Any divergence — one extra
/// message, one reordered event, one different resolution outcome — fails
/// the test.  If a future PR changes protocol behavior *on purpose*, it
/// must re-capture these goldens and say so.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "adapt/controller.hpp"
#include "apps/kvstore.hpp"
#include "client/session.hpp"
#include "shard/sharded_cluster.hpp"
#include "workload/engine.hpp"

namespace idea::shard {
namespace {

struct ReplayResult {
  std::uint64_t puts = 0;
  std::size_t converged = 0;
  std::uint64_t digest = 0;
  std::uint64_t logical_messages = 0;
  std::uint64_t wire_messages = 0;
  std::map<std::string, std::uint64_t> per_type;
};

ReplayResult replay(std::uint64_t seed) {
  constexpr std::uint32_t kFiles = 120;
  ShardedClusterConfig cfg;
  cfg.endpoints = 8;
  cfg.replication = 3;
  cfg.batching = true;
  cfg.seed = seed;
  cfg.sync_sizes();
  cfg.idea.maxima = vv::TripleMaxima{100, 100, 100};
  cfg.idea.controller.mode = core::AdaptiveMode::kHintBased;
  cfg.idea.controller.hint = 0.85;
  cfg.idea.detection_period = sec(2);
  ShardedCluster cluster(cfg);
  cluster.place(1, kFiles);

  apps::KvStore kv(cluster,
                   apps::KvStoreOptions{.buckets = kFiles, .first_file = 1});
  apps::KvWorkloadParams wl;
  wl.clients = 16;
  wl.interval = msec(250);
  wl.duration = sec(6);
  wl.keyspace = 480;
  wl.zipf_s = 0.9;
  apps::KvWorkload workload(kv, cluster.sim(), wl, seed ^ 0xBEEF);
  workload.start();
  cluster.run_for(sec(6) + sec(10));

  ReplayResult r;
  r.puts = kv.puts();
  for (FileId f = 1; f <= kFiles; ++f) {
    if (cluster.converged(f)) ++r.converged;
    core::IdeaNode* coord = cluster.replica_at_rank(f, 0);
    if (coord != nullptr) {
      r.digest ^= coord->store().content_digest() * (f * 2654435761ull);
    }
  }
  r.logical_messages = cluster.batching()->stats().logical_messages;
  r.wire_messages = cluster.wire_counters().total_messages();
  r.per_type = cluster.batching()->counters().by_type();
  return r;
}

using Golden = std::map<std::string, std::uint64_t>;

TEST(ShardedClusterDeterminism, Seed2007MatchesPreRefactorRun) {
  const ReplayResult r = replay(2007);
  EXPECT_EQ(r.puts, 387u);
  EXPECT_EQ(r.converged, 120u);
  EXPECT_EQ(r.digest, 0xd4cf90538821fb05ull);
  EXPECT_EQ(r.logical_messages, 10966u);
  EXPECT_EQ(r.wire_messages, 2355u);
  const Golden expected{
      {"detect.probe", 3200},     {"detect.reply", 2672},
      {"gossip.push", 2160},      {"ransub.collect", 720},
      {"ransub.distribute", 720}, {"ransub.epoch", 720},
      {"shard.replicate", 774},
  };
  EXPECT_EQ(r.per_type, expected);
}

TEST(ShardedClusterDeterminism, Seed555MatchesPreRefactorRun) {
  const ReplayResult r = replay(555);
  EXPECT_EQ(r.puts, 390u);
  EXPECT_EQ(r.converged, 120u);
  EXPECT_EQ(r.digest, 0xb8bd153ba9842aa6ull);
  EXPECT_EQ(r.logical_messages, 11140u);
  EXPECT_EQ(r.wire_messages, 2348u);
  const Golden expected{
      {"detect.probe", 3296},     {"detect.reply", 2744},
      {"gossip.push", 2160},      {"ransub.collect", 720},
      {"ransub.distribute", 720}, {"ransub.epoch", 720},
      {"shard.replicate", 780},
  };
  EXPECT_EQ(r.per_type, expected);
}

/// Same shape as replay(), but elastic: anti-entropy runs from the start,
/// one endpoint joins at t=2.5s and another leaves at t=4.5s, mid-workload.
/// Pins the whole membership machinery — migration order, state streaming,
/// new-epoch stack construction, digest/repair rounds — to a fixed-seed
/// outcome.
ReplayResult replay_churn(std::uint64_t seed) {
  constexpr std::uint32_t kFiles = 60;
  ShardedClusterConfig cfg;
  cfg.endpoints = 6;
  cfg.replication = 3;
  cfg.batching = true;
  cfg.seed = seed;
  cfg.sync_sizes();
  cfg.idea.maxima = vv::TripleMaxima{100, 100, 100};
  cfg.idea.detection_period = sec(2);
  cfg.anti_entropy_period = sec(1);
  ShardedCluster cluster(cfg);
  cluster.place(1, kFiles);

  apps::KvStore kv(cluster,
                   apps::KvStoreOptions{.buckets = kFiles, .first_file = 1});
  apps::KvWorkloadParams wl;
  wl.clients = 8;
  wl.interval = msec(250);
  wl.duration = sec(6);
  wl.keyspace = 240;
  wl.zipf_s = 0.9;
  apps::KvWorkload workload(kv, cluster.sim(), wl, seed ^ 0xBEEF);
  workload.start();

  cluster.run_until(sec(2) + msec(500));
  const MembershipChange joined = cluster.add_endpoint();
  cluster.run_until(sec(4) + msec(500));
  const MembershipChange left = cluster.remove_endpoint(2);
  cluster.run_until(sec(6) + sec(10));

  ReplayResult r;
  r.puts = kv.puts();
  for (FileId f = 1; f <= kFiles; ++f) {
    if (cluster.converged(f)) ++r.converged;
    core::IdeaNode* coord = cluster.replica_at_rank(f, 0);
    if (coord != nullptr) {
      r.digest ^= coord->store().content_digest() * (f * 2654435761ull);
    }
  }
  // Fold the membership reports in so a change to migration accounting
  // shows up even if the replica contents happen to survive it.
  r.digest ^= mix64(0x10 + joined.files_migrated) ^
              mix64(0x20 + joined.state_updates) ^
              mix64(0x30 + left.files_migrated) ^
              mix64(0x40 + left.state_updates);
  r.logical_messages = cluster.batching()->stats().logical_messages;
  r.wire_messages = cluster.wire_counters().total_messages();
  r.per_type = cluster.batching()->counters().by_type();
  return r;
}

TEST(ShardedClusterDeterminism, ChurnReplayIsInternallyReproducible) {
  const ReplayResult a = replay_churn(2007);
  const ReplayResult b = replay_churn(2007);
  EXPECT_EQ(a.puts, b.puts);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.logical_messages, b.logical_messages);
  EXPECT_EQ(a.wire_messages, b.wire_messages);
  EXPECT_EQ(a.per_type, b.per_type);
}

TEST(ShardedClusterDeterminism, ChurnSeed2007MatchesCapturedRun) {
  // Captured from the run that introduced elastic membership (PR 3).  A
  // divergence means the join/leave/anti-entropy machinery changed
  // behavior; if intentional, re-capture and say so in the PR.
  const ReplayResult r = replay_churn(2007);
  EXPECT_EQ(r.puts, 188u);
  EXPECT_EQ(r.converged, 60u);
  EXPECT_EQ(r.digest, 2514054996571215718ull);
  EXPECT_EQ(r.logical_messages, 9823u);
  EXPECT_EQ(r.wire_messages, 2231u);
  const Golden expected{
      {"detect.probe", 1054},   {"detect.reply", 976},
      {"gossip.push", 1080},    {"ransub.collect", 274},
      {"ransub.distribute", 274}, {"ransub.epoch", 274},
      {"shard.digest", 2751},   {"shard.migrate", 76},
      {"shard.repair", 2688},   {"shard.replicate", 376},
  };
  EXPECT_EQ(r.per_type, expected);
}

/// Crash-stop variant: anti-entropy and periodic incremental checkpoints
/// run from the start; one endpoint crashes at t=2.5s (all volatile state
/// and in-flight traffic lost) and restarts at t=4.5s, recovering from its
/// durable checkpoint plus anti-entropy.  Pins the entire fault pipeline —
/// crash teardown order, checkpoint contents, restart reconciliation,
/// gap-healing digest/repair rounds — to a fixed-seed outcome.
ReplayResult replay_crash(std::uint64_t seed) {
  constexpr std::uint32_t kFiles = 60;
  ShardedClusterConfig cfg;
  cfg.endpoints = 6;
  cfg.replication = 3;
  cfg.batching = true;
  cfg.seed = seed;
  cfg.sync_sizes();
  cfg.idea.maxima = vv::TripleMaxima{100, 100, 100};
  cfg.idea.detection_period = sec(2);
  cfg.anti_entropy_period = sec(1);
  cfg.checkpoint.engine = replica::CheckpointEngineKind::kIncremental;
  cfg.checkpoint.period = sec(1);
  ShardedCluster cluster(cfg);
  cluster.place(1, kFiles);

  apps::KvStore kv(cluster,
                   apps::KvStoreOptions{.buckets = kFiles, .first_file = 1});
  apps::KvWorkloadParams wl;
  wl.clients = 8;
  wl.interval = msec(250);
  wl.duration = sec(6);
  wl.keyspace = 240;
  wl.zipf_s = 0.9;
  apps::KvWorkload workload(kv, cluster.sim(), wl, seed ^ 0xBEEF);
  workload.start();

  cluster.run_until(sec(2) + msec(500));
  const CrashReport crash = cluster.crash_endpoint(2);
  cluster.run_until(sec(4) + msec(500));
  const RecoveryReport recovery = cluster.restart_endpoint(2);
  cluster.run_until(sec(6) + sec(10));

  ReplayResult r;
  r.puts = kv.puts();
  for (FileId f = 1; f <= kFiles; ++f) {
    if (cluster.converged(f)) ++r.converged;
    core::IdeaNode* coord = cluster.replica_at_rank(f, 0);
    if (coord != nullptr) {
      r.digest ^= coord->store().content_digest() * (f * 2654435761ull);
    }
  }
  // Fold the fault reports in so a change to crash accounting or recovery
  // sourcing shows up even if the replica contents happen to survive it.
  r.digest ^= mix64(0x50 + crash.groups_affected) ^
              mix64(0x60 + crash.volatile_updates_lost) ^
              mix64(0x70 + recovery.checkpoint_updates) ^
              mix64(0x80 + recovery.reconciled_updates) ^
              mix64(0x90 + recovery.gap_updates) ^
              mix64(0xA0 + recovery.files_recovered);
  r.logical_messages = cluster.batching()->stats().logical_messages;
  r.wire_messages = cluster.wire_counters().total_messages();
  r.per_type = cluster.batching()->counters().by_type();
  return r;
}

TEST(ShardedClusterDeterminism, CrashReplayIsInternallyReproducible) {
  const ReplayResult a = replay_crash(2007);
  const ReplayResult b = replay_crash(2007);
  EXPECT_EQ(a.puts, b.puts);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.logical_messages, b.logical_messages);
  EXPECT_EQ(a.wire_messages, b.wire_messages);
  EXPECT_EQ(a.per_type, b.per_type);
}

TEST(ShardedClusterDeterminism, CrashSeed2007MatchesCapturedRun) {
  // Captured from the run that introduced the crash-stop fault model.  A
  // divergence means crash teardown, checkpointing or recovery changed
  // behavior; if intentional, re-capture and say so in the PR.
  const ReplayResult r = replay_crash(2007);
  EXPECT_EQ(r.puts, 188u);
  EXPECT_EQ(r.converged, 60u);  // crash+restart heals every file
  EXPECT_EQ(r.digest, 4624972137363858675ull);
  EXPECT_EQ(r.logical_messages, 9455u);
  EXPECT_EQ(r.wire_messages, 1902u);
  // No shard.migrate: restart recovery streams deltas over digest/repair,
  // never the membership-migration path.
  const Golden expected{
      {"detect.probe", 980},      {"detect.reply", 878},
      {"gossip.push", 1080},      {"ransub.collect", 286},
      {"ransub.distribute", 286}, {"ransub.epoch", 286},
      {"shard.digest", 2695},     {"shard.repair", 2588},
      {"shard.replicate", 376},
  };
  EXPECT_EQ(r.per_type, expected);
}

/// Adaptive variant: the ConsistencyController is on, sessions opt in,
/// and the open-loop workload engine drives a hot writer plus adaptive
/// bounded readers.  Pins the entire adaptation pipeline — feedback
/// accounting, tick decision order, escalation/relax/renegotiate rules,
/// and the serve-time overrides they produce — to a fixed-seed outcome.
/// Note the goldens in the tests ABOVE are untouched: with adapt.enabled
/// off (the default) no controller exists and routing is byte-identical.
struct AdaptiveReplay {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t stale_reads = 0;
  std::uint64_t escalated_reads = 0;
  std::uint64_t adapted_reads = 0;
  std::uint64_t content_digest = 0;
  std::uint64_t decision_digest = 0;
  std::vector<std::string> decisions;
  adapt::ControllerStats ctl;
};

AdaptiveReplay replay_adaptive(std::uint64_t seed) {
  constexpr std::uint32_t kFiles = 24;
  ShardedClusterConfig cfg;
  cfg.endpoints = 6;
  cfg.replication = 3;
  cfg.seed = seed;
  cfg.anti_entropy_period = msec(500);
  cfg.sync_sizes();
  cfg.idea.maxima = vv::TripleMaxima{100, 100, 100};
  cfg.idea.detection_period = sec(2);
  cfg.freshness_hint_ttl = msec(800);
  cfg.adapt.enabled = true;
  ShardedCluster cluster(cfg);
  cluster.place(1, kFiles);

  client::Client client(cluster);
  client::ClientSession writer = client.session({.origin = 0});
  std::vector<client::ClientSession> readers;
  for (NodeId origin : {NodeId{1}, NodeId{3}, NodeId{5}}) {
    readers.push_back(client.session(
        {.level = client::ConsistencyLevel::bounded_staleness(2),
         .origin = origin,
         .adaptive = true,
         .tenant = 1,
         .declare_slo = origin == 1,
         .slo = adapt::Slo{2, msec(40)}}));
  }

  // Tenant 0: a hot writer hammering 8 keys — replicas lag between
  // anti-entropy rounds, so bounded readers escalate and the controller
  // sees contention.  Tenant 1: adaptive readers over the full keyspace —
  // the cold tail relaxes to Eventual; the tight 40 ms latency clause
  // forces bound renegotiation.
  workload::TenantSpec hot;
  hot.name = "hot";
  hot.keys = 8;
  hot.read_fraction = 0.0;
  hot.rate = {{0, 60.0}};
  workload::TenantSpec read;
  read.name = "read";
  read.keys = kFiles;
  read.read_fraction = 1.0;
  read.rate = {{0, 120.0}};
  read.zipf = {{0, 1.1}};
  read.origins = {1, 3, 5};

  AdaptiveReplay r;
  workload::OpenLoopEngine engine(
      cluster.sim(), workload::EngineOptions{msec(50), sec(6), seed ^ 0xADA},
      {hot, read}, [&](const workload::Op& op) {
        const FileId f = 1 + static_cast<FileId>(op.key);
        if (!op.is_read) {
          writer.put(f, "w" + std::to_string(op.index), 1.0);
          ++r.writes;
          return;
        }
        const std::size_t at = op.origin == 1 ? 0 : (op.origin == 3 ? 1 : 2);
        const client::OpHandle<client::ReadResult> h = readers[at].read(f);
        if (!h.ok()) return;
        ++r.reads;
        if (h->staleness_versions > 0) ++r.stale_reads;
        if (h->escalated) ++r.escalated_reads;
      });
  engine.start();
  // Drain past the workload so post-traffic windows relax the now-idle
  // files — the quiet-window rule is part of the pinned history.
  cluster.run_until(sec(6) + sec(4));

  for (FileId f = 1; f <= kFiles; ++f) {
    core::IdeaNode* coord = cluster.replica_at_rank(f, 0);
    if (coord != nullptr) {
      r.content_digest ^= coord->store().content_digest() * (f * 2654435761ull);
    }
  }
  r.adapted_reads = cluster.router().stats().adapted_reads;
  r.ctl = cluster.controller()->stats();
  r.decision_digest = cluster.controller()->decision_digest();
  r.decisions = cluster.controller()->decision_log();
  return r;
}

TEST(ShardedClusterDeterminism, AdaptiveReplayIsInternallyReproducible) {
  const AdaptiveReplay a = replay_adaptive(2007);
  const AdaptiveReplay b = replay_adaptive(2007);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.content_digest, b.content_digest);
  EXPECT_EQ(a.adapted_reads, b.adapted_reads);
  EXPECT_EQ(a.decisions, b.decisions);  // byte-identical decision log
  EXPECT_EQ(a.decision_digest, b.decision_digest);
  EXPECT_EQ(a.ctl.decisions, b.ctl.decisions);
  EXPECT_EQ(a.ctl.escalations, b.ctl.escalations);
  EXPECT_EQ(a.ctl.relaxations, b.ctl.relaxations);
  EXPECT_EQ(a.ctl.renegotiations, b.ctl.renegotiations);
}

TEST(ShardedClusterDeterminism, AdaptiveSeed2007MatchesCapturedRun) {
  // Captured from the run that introduced the adaptive controller.  A
  // divergence means the feedback plumbing, tick rules, or decision-log
  // format changed behavior; if intentional, re-capture and say so.
  const AdaptiveReplay r = replay_adaptive(2007);
  EXPECT_GT(r.ctl.escalations, 0u);
  EXPECT_GT(r.ctl.relaxations, 0u);
  EXPECT_GT(r.adapted_reads, 0u);
  EXPECT_EQ(r.reads, 755u);
  EXPECT_EQ(r.writes, 353u);
  EXPECT_EQ(r.content_digest, 6857582279335632097ull);
  EXPECT_EQ(r.ctl.decisions, 29u);
  EXPECT_EQ(r.decision_digest, 4072593623399845738ull);
}

TEST(ShardedClusterDeterminism, ReplayIsInternallyReproducible) {
  // Same seed, same process: two replays must agree with themselves (guards
  // against nondeterminism that global interning state could introduce).
  const ReplayResult a = replay(99);
  const ReplayResult b = replay(99);
  EXPECT_EQ(a.puts, b.puts);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.logical_messages, b.logical_messages);
  EXPECT_EQ(a.per_type, b.per_type);
}

}  // namespace
}  // namespace idea::shard
