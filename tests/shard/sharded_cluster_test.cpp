#include "shard/sharded_cluster.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "client/session.hpp"

namespace idea::shard {
namespace {

ShardedClusterConfig small_cluster_config(std::uint64_t seed = 4207) {
  ShardedClusterConfig cfg;
  cfg.endpoints = 8;
  cfg.replication = 3;
  cfg.seed = seed;
  cfg.sync_sizes();
  cfg.idea.maxima = vv::TripleMaxima{10, 10, 10};
  cfg.idea.controller.mode = core::AdaptiveMode::kHintBased;
  cfg.idea.controller.hint = 0.9;
  return cfg;
}

TEST(ShardedClusterTest, PlacementMatchesRing) {
  ShardedCluster cluster(small_cluster_config());
  cluster.place(1, 40);
  EXPECT_EQ(cluster.placed_files(), 40u);

  std::size_t open_total = 0;
  for (NodeId e = 0; e < cluster.size(); ++e) {
    open_total += cluster.service(e).open_files();
  }
  EXPECT_EQ(open_total, 40u * 3u);

  for (FileId f = 1; f <= 40; ++f) {
    const std::vector<NodeId> group = cluster.ring().replicas(f, 3);
    ASSERT_EQ(group.size(), 3u);
    EXPECT_EQ(group, cluster.group_of(f));
    for (NodeId member : group) {
      core::IdeaNode* node = cluster.replica(f, member);
      ASSERT_NE(node, nullptr);
      EXPECT_EQ(node->file(), f);
    }
    for (NodeId e = 0; e < cluster.size(); ++e) {
      if (std::find(group.begin(), group.end(), e) == group.end()) {
        EXPECT_EQ(cluster.replica(f, e), nullptr);
        EXPECT_EQ(cluster.service(e).find(f), nullptr);
      }
    }
  }
}

TEST(ShardedClusterTest, WriteReplicatesAcrossGroup) {
  ShardedCluster cluster(small_cluster_config());
  const FileId file = 7;
  client::ClientSession session(cluster, {});
  ASSERT_TRUE(session.put(file, "alpha", 1.0).ok());
  cluster.run_for(sec(2));  // one replication hop

  for (std::uint32_t rank = 0; rank < 3; ++rank) {
    core::IdeaNode* node = cluster.replica_at_rank(file, rank);
    ASSERT_NE(node, nullptr);
    EXPECT_EQ(node->store().update_count(), 1u)
        << "rank " << rank << " missed the replicated update";
  }
  EXPECT_TRUE(cluster.converged(file));
  EXPECT_EQ(cluster.sync_agent(file, 0)->stats().pushed, 2u);
}

TEST(ShardedClusterTest, ConflictingWritesConvergeThroughResolution) {
  ShardedCluster cluster(small_cluster_config());
  const FileId file = 11;
  cluster.ensure_open(file);
  // Warm the group so its top layer exists before the conflict.
  ASSERT_TRUE(cluster.sync_agent(file, 0)->put("warm", 0.0));
  cluster.run_for(sec(12));  // a couple of RanSub epochs

  // Conflicting writes from two different group members: a large
  // numerical gap, as in the seed's service test.
  ASSERT_TRUE(cluster.sync_agent(file, 0)->put("a", 1.0));
  ASSERT_TRUE(cluster.sync_agent(file, 1)->put("b", 9.0));
  cluster.run_for(sec(40));  // detect -> hint dips -> resolution round

  EXPECT_TRUE(cluster.converged(file))
      << "replica digests still differ after resolution";
  for (std::uint32_t rank = 0; rank < 3; ++rank) {
    EXPECT_GE(cluster.replica_at_rank(file, rank)->store().update_count(),
              3u);
  }
}

TEST(ShardedClusterTest, RouterSpreadsCoordinators) {
  ShardedCluster cluster(small_cluster_config());
  client::ClientSession session(cluster, {});
  for (FileId f = 1; f <= 64; ++f) {
    ASSERT_TRUE(session.put(f, "x", 0.5).ok());
  }
  cluster.run_for(sec(1));

  const RouterStats& stats = cluster.router().stats();
  EXPECT_EQ(stats.writes, 64u);
  EXPECT_EQ(stats.opens, 64u);
  // The ring should never funnel 64 tenants through one coordinator.
  EXPECT_GT(stats.coordinator_ops.size(), 3u);
  for (const auto& [endpoint, ops] : stats.coordinator_ops) {
    EXPECT_LT(ops, 64u / 2) << "endpoint " << endpoint
                            << " coordinates too many tenants";
  }
}

TEST(ShardedClusterTest, BatchingCoalescesSameTickFanout) {
  ShardedCluster cluster(small_cluster_config());
  cluster.place(1, 40);
  // All coordinators push replicas at the same instant; co-located tenants
  // share endpoint pairs, so the fan-out coalesces into fewer envelopes.
  client::ClientSession session(cluster, {});
  for (FileId f = 1; f <= 40; ++f) {
    ASSERT_TRUE(session.put(f, "burst", 0.5).ok());
  }
  cluster.run_for(sec(20));

  ASSERT_NE(cluster.batching(), nullptr);
  const net::BatchingStats& stats = cluster.batching()->stats();
  EXPECT_GT(stats.logical_messages, 0u);
  EXPECT_GT(stats.envelopes, 0u);
  EXPECT_LT(stats.envelopes, stats.logical_messages);
  EXPECT_GT(stats.batch_factor(), 1.0);
  EXPECT_GE(stats.largest_batch, 2u);
  // The wire only saw one envelope per flush (singletons ship raw but
  // still count as envelopes in the stats).
  EXPECT_EQ(cluster.wire_counters().total_messages(), stats.envelopes);
}

TEST(ShardedClusterTest, BatchingCanBeDisabled) {
  ShardedClusterConfig cfg = small_cluster_config();
  cfg.batching = false;
  ShardedCluster cluster(cfg);
  EXPECT_EQ(cluster.batching(), nullptr);
  client::ClientSession session(cluster, {});
  ASSERT_TRUE(session.put(3, "plain", 1.0).ok());
  cluster.run_for(sec(2));
  EXPECT_TRUE(cluster.converged(3));
}

TEST(ShardedClusterTest, CloseFileTearsDownWholeGroup) {
  ShardedCluster cluster(small_cluster_config());
  const FileId file = 5;
  cluster.ensure_open(file);
  const std::vector<NodeId> group = cluster.group_of(file);
  client::ClientSession session(cluster, {});
  EXPECT_TRUE(session.close(file));
  for (NodeId member : group) {
    EXPECT_EQ(cluster.service(member).find(file), nullptr);
  }
  EXPECT_FALSE(cluster.is_placed(file));
  EXPECT_FALSE(session.close(file));  // idempotent no-op
  cluster.run_for(sec(5));                     // no dangling timers blow up
}

TEST(ShardedClusterTest, EndToEndPlacementWriteConverge) {
  // The acceptance flow: place a tenant population, write through a
  // client session, run the sim, and require every group to converge.
  ShardedCluster cluster(small_cluster_config(991));
  cluster.place(1, 30);
  client::ClientSession session(cluster, {});
  for (FileId f = 1; f <= 30; ++f) {
    ASSERT_TRUE(session.put(f, "payload-" + std::to_string(f),
                            0.25 * static_cast<double>(f % 4))
                    .ok());
  }
  cluster.run_for(sec(30));
  for (FileId f = 1; f <= 30; ++f) {
    EXPECT_TRUE(cluster.converged(f)) << "file " << f << " diverged";
    for (std::uint32_t rank = 0; rank < 3; ++rank) {
      EXPECT_GE(cluster.replica_at_rank(f, rank)->store().update_count(),
                1u);
    }
  }
}

}  // namespace
}  // namespace idea::shard
