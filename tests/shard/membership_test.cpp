/// \file membership_test.cpp
/// \brief Elastic ring membership: endpoints join and leave a live
///        cluster, files migrate to their new replica groups, and no
///        update is lost in the process.
///
/// The load-bearing assertions:
///  * add_endpoint()/remove_endpoint() migrate *exactly* the files whose
///    replica group the ring says changed (HashRing::rebalance is the
///    oracle), and
///  * a run that joins and leaves mid-workload ends with byte-identical
///    per-file contents to a run that never churned — migration hands the
///    full log to the new coordinator, which continues the old writer
///    history seamlessly.

#include "shard/sharded_cluster.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "client/session.hpp"

namespace idea::shard {
namespace {

ShardedClusterConfig membership_config(std::uint64_t seed = 77) {
  ShardedClusterConfig cfg;
  cfg.endpoints = 6;
  cfg.replication = 3;
  cfg.seed = seed;
  cfg.sync_sizes();
  cfg.idea.maxima = vv::TripleMaxima{50, 50, 50};
  // On-demand mode with no hint: detection runs but never triggers
  // resolution, so no write is ever blocked and churned/unchurned runs
  // issue identical update histories (what the digest comparison needs).
  cfg.idea.controller.mode = core::AdaptiveMode::kOnDemand;
  cfg.idea.controller.hint = 0.0;
  return cfg;
}

/// Deterministic workload: every file gets one write at each scheduled
/// instant, issued through a client session (so it lands on whatever
/// endpoint coordinates the file at that moment).
void schedule_writes(ShardedCluster& cluster, client::ClientSession& session,
                     FileId first, FileId count,
                     const std::vector<SimTime>& instants) {
  for (SimTime t : instants) {
    cluster.sim().schedule_at(t, [&session, first, count, t] {
      for (FileId f = first; f < first + count; ++f) {
        session.put(f, "w@" + std::to_string(t) + "#" + std::to_string(f),
                    static_cast<double>(f % 5));
      }
    });
  }
}

std::map<FileId, std::uint64_t> coordinator_digests(ShardedCluster& cluster,
                                                    FileId first,
                                                    FileId count) {
  std::map<FileId, std::uint64_t> out;
  for (FileId f = first; f < first + count; ++f) {
    core::IdeaNode* coord = cluster.replica_at_rank(f, 0);
    out[f] = coord == nullptr ? 0 : coord->store().content_digest();
  }
  return out;
}

TEST(MembershipTest, JoinMigratesExactlyWhatRebalancePredicts) {
  constexpr FileId kFiles = 80;
  ShardedCluster cluster(membership_config());
  cluster.place(1, kFiles);
  client::Client client(cluster);
  client::ClientSession session = client.session();
  for (FileId f = 1; f <= kFiles; ++f) {
    ASSERT_TRUE(session.put(f, "seed-" + std::to_string(f), 1.0).ok());
  }
  cluster.run_for(sec(3));

  const MembershipChange change = cluster.add_endpoint();
  EXPECT_EQ(change.endpoint, 6u);
  EXPECT_TRUE(cluster.has_endpoint(6));
  EXPECT_EQ(cluster.endpoints().size(), 7u);

  // The contract the tentpole hinges on: we migrated exactly the groups
  // the ring delta predicts — no more, no fewer.
  EXPECT_EQ(change.rebalance.keys, kFiles);
  EXPECT_GT(change.rebalance.group_changed, 0u);
  EXPECT_EQ(change.files_migrated, change.rebalance.group_changed);
  // A join of 1-in-7 endpoints must not reshuffle most of the keyspace.
  EXPECT_LT(change.rebalance.group_changed_fraction(), 0.75);
  EXPECT_GT(change.stream_messages, 0u);

  // Placements now match the post-join ring, and every migrated file's
  // new coordinator already holds the full pre-join history.
  for (FileId f = 1; f <= kFiles; ++f) {
    ASSERT_TRUE(cluster.is_placed(f));
    EXPECT_EQ(cluster.group_of(f), cluster.ring().replicas(f, 3));
    core::IdeaNode* coord = cluster.replica_at_rank(f, 0);
    ASSERT_NE(coord, nullptr);
    EXPECT_GE(coord->store().update_count(), 1u) << "file " << f;
  }

  // Once the in-flight migration streams deliver, the whole group holds
  // identical contents again.
  cluster.run_for(sec(5));
  for (FileId f = 1; f <= kFiles; ++f) {
    EXPECT_TRUE(cluster.converged(f)) << "file " << f;
  }
}

TEST(MembershipTest, LeaveMigratesFilesOffTheEndpoint) {
  constexpr FileId kFiles = 60;
  ShardedCluster cluster(membership_config(123));
  cluster.place(1, kFiles);
  client::Client client(cluster);
  client::ClientSession session = client.session();
  for (FileId f = 1; f <= kFiles; ++f) {
    ASSERT_TRUE(session.put(f, "pre-" + std::to_string(f), 0.5).ok());
  }
  cluster.run_for(sec(3));

  const NodeId leaver = 2;
  const MembershipChange change = cluster.remove_endpoint(leaver);
  EXPECT_EQ(change.endpoint, leaver);
  EXPECT_FALSE(cluster.has_endpoint(leaver));
  EXPECT_EQ(cluster.endpoints().size(), 5u);
  EXPECT_EQ(change.files_migrated, change.rebalance.group_changed);

  for (FileId f = 1; f <= kFiles; ++f) {
    ASSERT_TRUE(cluster.is_placed(f));
    const std::vector<NodeId> group = cluster.group_of(f);
    for (NodeId member : group) EXPECT_NE(member, leaver);
    core::IdeaNode* coord = cluster.replica_at_rank(f, 0);
    ASSERT_NE(coord, nullptr);
    EXPECT_GE(coord->store().update_count(), 1u) << "file " << f;
  }

  cluster.run_for(sec(5));
  for (FileId f = 1; f <= kFiles; ++f) {
    EXPECT_TRUE(cluster.converged(f)) << "file " << f;
  }

  // Removing the same endpoint again is a no-op.
  const MembershipChange again = cluster.remove_endpoint(leaver);
  EXPECT_EQ(again.endpoint, kNoNode);
  EXPECT_EQ(again.files_migrated, 0u);
}

TEST(MembershipTest, ChurnedRunMatchesNeverChurnedDigests) {
  // The acceptance criterion: one join and one leave in the middle of a
  // live workload; afterwards, every file's contents are byte-identical
  // to a run that never churned.  Content digests cover writer ids (rank
  // space), sequence numbers, stamps and payload bytes, so this catches a
  // lost update, a broken coordinator hand-off (sequence fork), or a
  // migration applying updates twice.
  constexpr FileId kFiles = 48;
  std::vector<SimTime> instants;
  for (SimTime t = msec(500); t <= sec(10); t += msec(500)) {
    instants.push_back(t);
  }

  ShardedCluster churned(membership_config(9));
  churned.place(1, kFiles);
  client::Client churned_client(churned);
  client::ClientSession churned_session = churned_client.session();
  schedule_writes(churned, churned_session, 1, kFiles, instants);
  churned.run_until(sec(3) + msec(200));
  const MembershipChange joined = churned.add_endpoint();
  EXPECT_EQ(joined.files_migrated, joined.rebalance.group_changed);
  churned.run_until(sec(6) + msec(100));
  const MembershipChange left = churned.remove_endpoint(1);
  EXPECT_EQ(left.files_migrated, left.rebalance.group_changed);
  churned.run_until(sec(20));

  ShardedCluster control(membership_config(9));
  control.place(1, kFiles);
  client::Client control_client(control);
  client::ClientSession control_session = control_client.session();
  schedule_writes(control, control_session, 1, kFiles, instants);
  control.run_until(sec(20));

  const auto churned_digests = coordinator_digests(churned, 1, kFiles);
  const auto control_digests = coordinator_digests(control, 1, kFiles);
  EXPECT_EQ(churned_digests, control_digests);

  // And the churned run's groups are internally consistent: migration
  // streams + replication pushes warmed every replica of the new epochs.
  for (FileId f = 1; f <= kFiles; ++f) {
    EXPECT_TRUE(churned.converged(f)) << "file " << f;
  }
  // Every write was accepted in both runs (no resolution blocking, no
  // coordinator sequence fork after the hand-off).
  EXPECT_EQ(churned.router().stats().writes,
            instants.size() * static_cast<std::uint64_t>(kFiles));
  EXPECT_EQ(churned.router().stats().writes, control.router().stats().writes);
}

TEST(MembershipTest, RemovedEndpointIdsAreReusedWithBumpedIncarnations) {
  // A long-lived cluster churns endlessly; ids must not leak.  Removed
  // ids go on a free-list and the next join reuses the smallest one
  // under a bumped incarnation, so the id space stays dense.
  constexpr FileId kFiles = 30;
  ShardedCluster cluster(membership_config(42));
  cluster.place(1, kFiles);
  client::Client client(cluster);
  client::ClientSession session = client.session();
  for (FileId f = 1; f <= kFiles; ++f) {
    ASSERT_TRUE(session.put(f, "seed-" + std::to_string(f), 1.0).ok());
  }
  cluster.run_for(sec(2));

  const std::uint32_t size_before = cluster.size();
  const MembershipChange left = cluster.remove_endpoint(2);
  EXPECT_EQ(left.endpoint, 2u);
  EXPECT_EQ(cluster.free_ids().count(2), 1u);
  cluster.run_for(sec(2));

  // The join reuses id 2 instead of growing the id space.
  const MembershipChange rejoined = cluster.add_endpoint();
  EXPECT_EQ(rejoined.endpoint, 2u);
  EXPECT_EQ(rejoined.incarnation, 1u);
  EXPECT_EQ(cluster.incarnation(2), 1u);
  EXPECT_EQ(cluster.size(), size_before) << "id space grew despite reuse";
  EXPECT_TRUE(cluster.has_endpoint(2));
  EXPECT_TRUE(cluster.free_ids().empty());
  EXPECT_EQ(cluster.ring().incarnation_of(2), 1u);

  // The reused endpoint takes traffic like any other: placements match
  // the ring, writes keep flowing, groups converge — and any in-flight
  // traffic from incarnation 0 was fenced by the group-epoch rebuild.
  cluster.run_for(sec(3));
  for (FileId f = 1; f <= kFiles; ++f) {
    ASSERT_TRUE(cluster.is_placed(f));
    EXPECT_EQ(cluster.group_of(f), cluster.ring().replicas(f, 3));
    ASSERT_TRUE(session.put(f, "post-" + std::to_string(f), 0.5).ok());
  }
  cluster.run_for(sec(5));
  for (FileId f = 1; f <= kFiles; ++f) {
    EXPECT_TRUE(cluster.converged(f)) << "file " << f;
  }

  // Churn cycles never grow the id space: remove/add pairs stay dense.
  for (int cycle = 0; cycle < 3; ++cycle) {
    const NodeId victim = static_cast<NodeId>(cycle % 3);
    const MembershipChange out = cluster.remove_endpoint(victim);
    ASSERT_EQ(out.endpoint, victim);
    cluster.run_for(sec(1));
    const MembershipChange in = cluster.add_endpoint();
    EXPECT_EQ(in.endpoint, victim);
    EXPECT_EQ(in.incarnation, cluster.incarnation(victim));
    EXPECT_GT(in.incarnation, 0u);
    cluster.run_for(sec(1));
  }
  EXPECT_EQ(cluster.size(), size_before);
  cluster.run_for(sec(5));
  for (FileId f = 1; f <= kFiles; ++f) {
    EXPECT_TRUE(cluster.converged(f)) << "file " << f << " after churn";
  }
}

TEST(MembershipTest, GroupsShrinkWhenRingFallsBelowReplication) {
  ShardedClusterConfig cfg = membership_config(31);
  cfg.endpoints = 3;
  cfg.sync_sizes();
  ShardedCluster cluster(cfg);
  cluster.place(1, 10);
  client::Client client(cluster);
  client::ClientSession session = client.session();
  for (FileId f = 1; f <= 10; ++f) {
    ASSERT_TRUE(session.put(f, "x", 1.0).ok());
  }
  cluster.run_for(sec(2));

  const MembershipChange change = cluster.remove_endpoint(0);
  // Every group contained all three endpoints, so every file migrates to
  // the surviving pair.
  EXPECT_EQ(change.files_migrated, 10u);
  for (FileId f = 1; f <= 10; ++f) {
    EXPECT_EQ(cluster.group_of(f).size(), 2u);
    core::IdeaNode* coord = cluster.replica_at_rank(f, 0);
    ASSERT_NE(coord, nullptr);
    EXPECT_GE(coord->store().update_count(), 1u);
  }
  cluster.run_for(sec(5));
  for (FileId f = 1; f <= 10; ++f) {
    EXPECT_TRUE(cluster.converged(f)) << "file " << f;
  }

  // Writes keep flowing at replication factor 2.
  for (FileId f = 1; f <= 10; ++f) {
    ASSERT_TRUE(session.put(f, "post", 1.0).ok());
  }
  cluster.run_for(sec(2));
  for (FileId f = 1; f <= 10; ++f) {
    EXPECT_TRUE(cluster.converged(f)) << "file " << f;
  }
}

}  // namespace
}  // namespace idea::shard
