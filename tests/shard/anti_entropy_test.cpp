/// \file anti_entropy_test.cpp
/// \brief Anti-entropy repair: replicas that missed replication pushes
///        (scripted loss windows, pairwise partitions) converge again
///        within a bounded number of digest rounds after the fault heals.
///
/// The control runs prove causality: with anti-entropy disabled the same
/// fault leaves replicas permanently diverged — the push-only protocol
/// never retransmits — so the convergence observed in the main runs is
/// attributable to the digest/repair exchange, not to luck.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "client/session.hpp"
#include "shard/sharded_cluster.hpp"

namespace idea::shard {
namespace {

constexpr SimDuration kAePeriod = msec(500);

ShardedClusterConfig ae_config(std::uint64_t seed, bool anti_entropy) {
  ShardedClusterConfig cfg;
  cfg.endpoints = 6;
  cfg.replication = 3;
  cfg.seed = seed;
  cfg.sync_sizes();
  cfg.idea.maxima = vv::TripleMaxima{50, 50, 50};
  // No hint, on-demand mode: resolution never runs, so anti-entropy is
  // the *only* mechanism that can heal a missed push.
  cfg.idea.controller.mode = core::AdaptiveMode::kOnDemand;
  cfg.idea.controller.hint = 0.0;
  cfg.anti_entropy_period = anti_entropy ? kAePeriod : 0;
  return cfg;
}

/// All replicas of `file` hold identical histories: same version-vector
/// counts and the same order-sensitive content digest.  (The full EVV
/// carries each node's own error triple, which legitimately differs per
/// replica; counts + digest pin the replicated state itself.)
bool replicas_identical(ShardedCluster& cluster, FileId file) {
  core::IdeaNode* coord = cluster.replica_at_rank(file, 0);
  if (coord == nullptr) return false;
  const auto k =
      static_cast<std::uint32_t>(cluster.group_of(file).size());
  for (std::uint32_t rank = 1; rank < k; ++rank) {
    core::IdeaNode* node = cluster.replica_at_rank(file, rank);
    if (node == nullptr) return false;
    if (node->store().evv().counts() != coord->store().evv().counts()) {
      return false;
    }
    if (node->store().content_digest() !=
        coord->store().content_digest()) {
      return false;
    }
  }
  return true;
}

/// Run the cluster one anti-entropy period at a time until every file's
/// replicas are identical; returns the number of periods it took, or -1
/// if `max_periods` was not enough.
int periods_to_convergence(ShardedCluster& cluster, FileId first,
                           FileId count, int max_periods) {
  for (int period = 0; period <= max_periods; ++period) {
    bool all = true;
    for (FileId f = first; f < first + count; ++f) {
      if (!replicas_identical(cluster, f)) {
        all = false;
        break;
      }
    }
    if (all) return period;
    cluster.run_for(kAePeriod);
  }
  return -1;
}

TEST(AntiEntropyTest, LossWindowOverWritesHealsWithinBoundedRounds) {
  // The acceptance scenario: a scripted 100%-loss window swallowing 25%
  // of the writes (>= the 20% the issue demands), healed by anti-entropy
  // within a bounded number of rounds.
  constexpr FileId kFile = 3;
  constexpr int kWrites = 40;

  auto run = [&](bool anti_entropy) {
    auto cluster =
        std::make_unique<ShardedCluster>(ae_config(2024, anti_entropy));
    cluster->ensure_open(kFile);
    auto session = std::make_shared<client::ClientSession>(
        *cluster, client::SessionOptions{});
    // 40 writes, 250 ms apart, from t=250ms; the window [2s, 4.5s) covers
    // the 10 writes at 2.0s..4.25s inclusive = 25%.
    for (int i = 1; i <= kWrites; ++i) {
      const SimTime t = msec(250) * i;
      cluster->sim().schedule_at(t, [session, i, kFile] {
        ASSERT_TRUE(session->put(kFile, "w" + std::to_string(i), 1.0).ok());
      });
    }
    cluster->transport().add_drop_window(sec(2), sec(4) + msec(500));
    return cluster;
  };

  auto cluster = run(/*anti_entropy=*/true);
  // Run the workload to just past the window while it is still lossy.
  cluster->run_until(sec(4) + msec(400));
  EXPECT_GT(cluster->transport().fault_dropped(), 0u);
  EXPECT_FALSE(replicas_identical(*cluster, kFile))
      << "the loss window failed to create divergence";

  // Finish the workload, then demand convergence within a bounded number
  // of anti-entropy periods.  Rotation pairs every two ranks within
  // k-1 = 2 periods; one extra period absorbs message latency.
  cluster->run_until(sec(11));
  const int periods = periods_to_convergence(*cluster, kFile, 1, 4);
  ASSERT_NE(periods, -1) << "replicas still diverged after 4 rounds";
  EXPECT_LE(periods, 3);

  core::IdeaNode* coord = cluster->replica_at_rank(kFile, 0);
  EXPECT_EQ(coord->store().update_count(),
            static_cast<std::size_t>(kWrites));
  const ReplicaSyncStats& s0 = cluster->sync_agent(kFile, 0)->stats();
  EXPECT_GT(s0.ae_rounds, 0u);
  EXPECT_GT(s0.repair_updates_sent, 0u);

  // Control: the identical fault without anti-entropy never recovers.
  auto control = run(/*anti_entropy=*/false);
  control->run_until(sec(30));
  EXPECT_FALSE(replicas_identical(*control, kFile))
      << "push-only replication recovered on its own; the loss window "
         "is not actually forcing divergence";
}

TEST(AntiEntropyTest, IsolatedReplicaCatchesUpAfterHeal) {
  constexpr FileId kFile = 9;
  ShardedCluster cluster(ae_config(555, /*anti_entropy=*/true));
  cluster.ensure_open(kFile);
  const std::vector<NodeId> group = cluster.group_of(kFile);
  ASSERT_EQ(group.size(), 3u);

  // Cut rank 1's endpoint off from both other members (pairwise
  // partitions, both directions) — the triangle route through rank 2
  // must not be able to warm it either.
  cluster.transport().partition(group[1], group[0]);
  cluster.transport().partition(group[1], group[2]);
  ASSERT_TRUE(cluster.transport().partitioned(group[0], group[1]));

  client::ClientSession session(cluster, {});
  for (int i = 0; i < 12; ++i) {
    cluster.sim().schedule_at(msec(300) * (i + 1), [&session, i, kFile] {
      ASSERT_TRUE(session.put(kFile, "p" + std::to_string(i), 0.5).ok());
    });
  }
  cluster.run_until(sec(5));
  core::IdeaNode* isolated = cluster.replica_at_rank(kFile, 1);
  EXPECT_EQ(isolated->store().update_count(), 0u)
      << "partition leaked messages to the isolated replica";
  EXPECT_FALSE(replicas_identical(cluster, kFile));

  cluster.transport().heal_all_partitions();
  const int periods = periods_to_convergence(cluster, kFile, 1, 5);
  ASSERT_NE(periods, -1) << "isolated replica never caught up";
  EXPECT_LE(periods, 4);
  EXPECT_EQ(isolated->store().update_count(), 12u);
  EXPECT_GT(cluster.sync_agent(kFile, 1)->stats().repair_updates_applied,
            0u);
}

TEST(AntiEntropyTest, DigestRepairFlowAndStats) {
  constexpr FileId kFile = 5;
  ShardedCluster cluster(ae_config(4207, /*anti_entropy=*/true));
  cluster.ensure_open(kFile);
  for (std::uint32_t rank = 0; rank < 3; ++rank) {
    EXPECT_TRUE(cluster.sync_agent(kFile, rank)->anti_entropy_running());
  }

  client::ClientSession session(cluster, {});
  ASSERT_TRUE(session.put(kFile, "hello", 1.0).ok());
  cluster.run_for(sec(3));

  std::uint64_t rounds = 0;
  std::uint64_t digests = 0;
  std::uint64_t repairs = 0;
  for (std::uint32_t rank = 0; rank < 3; ++rank) {
    const ReplicaSyncStats& s = cluster.sync_agent(kFile, rank)->stats();
    rounds += s.ae_rounds;
    digests += s.digests_received;
    repairs += s.repairs_sent;
  }
  // ~6 periods elapsed; every rank initiates one round per period and
  // every received digest is answered by exactly one repair (possibly
  // empty).  Digests from the final tick may still be in flight when the
  // clock stops, so allow one outstanding round per agent.
  EXPECT_GT(rounds, 6u);
  EXPECT_LE(digests, rounds);
  EXPECT_GE(digests + 3, rounds);
  EXPECT_EQ(repairs, digests);
  EXPECT_TRUE(replicas_identical(cluster, kFile));

  // The wire saw the new message types.
  EXPECT_GT(cluster.batching()->counters().messages_of("shard.digest"), 0u);
  EXPECT_GT(cluster.batching()->counters().messages_of("shard.repair"), 0u);

  cluster.sync_agent(kFile, 0)->stop_anti_entropy();
  EXPECT_FALSE(cluster.sync_agent(kFile, 0)->anti_entropy_running());
}

TEST(AntiEntropyTest, InvalidationFlagsPropagateThroughRepair) {
  // Version counts cannot express invalidation, so a replica that missed
  // a resolution's invalidate message needs the repair path to OR the
  // flag in — otherwise it diverges forever with identical counts.
  constexpr FileId kFile = 11;
  ShardedCluster cluster(ae_config(808, /*anti_entropy=*/true));
  cluster.ensure_open(kFile);
  client::ClientSession session(cluster, {});
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(session.put(kFile, "v" + std::to_string(i), 1.0).ok());
  }
  cluster.run_for(sec(1));
  ASSERT_TRUE(replicas_identical(cluster, kFile));

  // Mimic a resolution outcome whose invalidate message reached only the
  // coordinator: flag one update there and nowhere else.
  core::IdeaNode* coord = cluster.replica_at_rank(kFile, 0);
  ASSERT_TRUE(coord->store().invalidate(replica::UpdateKey{0, 2}));
  EXPECT_FALSE(replicas_identical(cluster, kFile))
      << "content digests should diverge on invalidation";

  const int periods = periods_to_convergence(cluster, kFile, 1, 4);
  ASSERT_NE(periods, -1) << "invalidation flag never propagated";
  for (std::uint32_t rank = 1; rank < 3; ++rank) {
    core::IdeaNode* node = cluster.replica_at_rank(kFile, rank);
    const replica::Update* u =
        node->store().find(replica::UpdateKey{0, 2});
    ASSERT_NE(u, nullptr);
    EXPECT_TRUE(u->invalidated) << "rank " << rank;
  }
  std::uint64_t healed = 0;
  for (std::uint32_t rank = 0; rank < 3; ++rank) {
    healed += cluster.sync_agent(kFile, rank)->stats().invalidations_healed;
  }
  EXPECT_EQ(healed, 2u);  // one per replica that missed the flag
}

TEST(AntiEntropyTest, DisabledByDefaultKeepsPushOnlyBehavior) {
  ShardedCluster cluster(ae_config(7, /*anti_entropy=*/false));
  cluster.ensure_open(1);
  EXPECT_FALSE(cluster.sync_agent(1, 0)->anti_entropy_running());
  client::ClientSession session(cluster, {});
  ASSERT_TRUE(session.put(1, "x", 1.0).ok());
  cluster.run_for(sec(3));
  EXPECT_EQ(cluster.batching()->counters().messages_of("shard.digest"), 0u);
  EXPECT_TRUE(replicas_identical(cluster, 1));  // pushes alone suffice
}

}  // namespace
}  // namespace idea::shard
