#include "shard/hash_ring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace idea::shard {
namespace {

std::vector<FileId> keyset(std::size_t n) {
  std::vector<FileId> keys(n);
  for (std::size_t i = 0; i < n; ++i) keys[i] = static_cast<FileId>(i + 1);
  return keys;
}

HashRing ring_of(std::uint32_t nodes, HashRingParams params = {}) {
  HashRing ring(params);
  for (NodeId n = 0; n < nodes; ++n) ring.add_node(n);
  return ring;
}

TEST(HashRingTest, EmptyRing) {
  HashRing ring;
  EXPECT_EQ(ring.primary(7), kNoNode);
  EXPECT_TRUE(ring.replicas(7, 3).empty());
  EXPECT_EQ(ring.node_count(), 0u);
}

TEST(HashRingTest, Deterministic) {
  const HashRing a = ring_of(16);
  const HashRing b = ring_of(16);
  for (FileId f : keyset(500)) {
    EXPECT_EQ(a.primary(f), b.primary(f));
    EXPECT_EQ(a.replicas(f, 3), b.replicas(f, 3));
  }
}

TEST(HashRingTest, AddNodeIsIdempotent) {
  HashRing ring = ring_of(8);
  const std::size_t points = ring.point_count();
  ring.add_node(3);
  EXPECT_EQ(ring.point_count(), points);
  EXPECT_EQ(ring.node_count(), 8u);
}

TEST(HashRingTest, ReplicasAreDistinctAndPrimaryFirst) {
  const HashRing ring = ring_of(10);
  for (FileId f : keyset(300)) {
    const std::vector<NodeId> group = ring.replicas(f, 3);
    ASSERT_EQ(group.size(), 3u);
    EXPECT_EQ(group.front(), ring.primary(f));
    const std::set<NodeId> distinct(group.begin(), group.end());
    EXPECT_EQ(distinct.size(), group.size());
  }
}

TEST(HashRingTest, ReplicasClampToNodeCount) {
  const HashRing ring = ring_of(2);
  EXPECT_EQ(ring.replicas(1, 5).size(), 2u);
}

TEST(HashRingTest, DistributionUniformity) {
  const HashRing ring = ring_of(32);
  const auto load = ring.primary_load(keyset(20000));
  ASSERT_EQ(load.size(), 32u);
  const double mean = 20000.0 / 32.0;
  std::size_t max_load = 0, min_load = SIZE_MAX;
  for (const auto& [node, count] : load) {
    max_load = std::max(max_load, count);
    min_load = std::min(min_load, count);
  }
  // With 96 vnodes/endpoint the arc lengths concentrate well; allow ±50%.
  EXPECT_LT(static_cast<double>(max_load), 1.5 * mean)
      << "hottest endpoint owns too much of the keyspace";
  EXPECT_GT(static_cast<double>(min_load), 0.5 * mean)
      << "coldest endpoint owns too little of the keyspace";
}

TEST(HashRingTest, NodeLeaveRemapsOnlyItsKeys) {
  constexpr std::uint32_t kNodes = 10;
  constexpr NodeId kLeaver = 4;
  const std::vector<FileId> keys = keyset(10000);
  const HashRing before = ring_of(kNodes);
  HashRing after = ring_of(kNodes);
  ASSERT_TRUE(after.remove_node(kLeaver));

  // Minimal remapping, key by key: a primary may change only if it WAS the
  // leaver, and then it must move to the next distinct successor.
  std::size_t moved = 0;
  for (FileId f : keys) {
    const NodeId old_primary = before.primary(f);
    const NodeId new_primary = after.primary(f);
    if (old_primary != kLeaver) {
      EXPECT_EQ(new_primary, old_primary)
          << "key " << f << " moved although its owner stayed";
    } else {
      ++moved;
      EXPECT_EQ(new_primary, before.replicas(f, 2).back())
          << "key " << f << " did not move to its successor";
    }
  }
  // The acceptance bound: one of N nodes leaving remaps <= 2/N + eps.
  const double fraction =
      static_cast<double>(moved) / static_cast<double>(keys.size());
  EXPECT_LE(fraction, 2.0 / kNodes + 0.02);
  EXPECT_GT(moved, 0u);

  const RebalanceStats stats =
      HashRing::rebalance(before, after, keys, /*k=*/1);
  EXPECT_EQ(stats.moved, moved);
  EXPECT_EQ(stats.keys, keys.size());
  EXPECT_LE(stats.moved_fraction(), 2.0 / kNodes + 0.02);
}

TEST(HashRingTest, NodeJoinOnlyStealsForItself) {
  constexpr std::uint32_t kNodes = 9;
  const std::vector<FileId> keys = keyset(10000);
  const HashRing before = ring_of(kNodes);
  HashRing after = ring_of(kNodes);
  after.add_node(kNodes);  // the joiner

  std::size_t moved = 0;
  for (FileId f : keys) {
    const NodeId old_primary = before.primary(f);
    const NodeId new_primary = after.primary(f);
    if (new_primary != old_primary) {
      ++moved;
      EXPECT_EQ(new_primary, kNodes)
          << "key " << f << " moved to an old node on join";
    }
  }
  // The joiner takes ~1/(N+1) of the keyspace and nothing else shuffles.
  const double fraction =
      static_cast<double>(moved) / static_cast<double>(keys.size());
  EXPECT_LE(fraction, 2.0 / (kNodes + 1) + 0.02);
  EXPECT_GT(moved, 0u);
}

TEST(HashRingTest, GroupRebalanceBoundedOnLeave) {
  constexpr std::uint32_t kNodes = 16;
  constexpr std::uint32_t kReplication = 3;
  const std::vector<FileId> keys = keyset(8000);
  const HashRing before = ring_of(kNodes);
  HashRing after = ring_of(kNodes);
  after.remove_node(7);

  const RebalanceStats stats =
      HashRing::rebalance(before, after, keys, kReplication);
  // A group changes iff the leaver was one of its k members: ~k/N of keys.
  EXPECT_LE(stats.group_changed_fraction(),
            2.0 * kReplication / kNodes + 0.03);
  EXPECT_GT(stats.group_changed, 0u);
  // Survivor pairs stay put: every changed group differs only by the
  // leaver's slot cascading, never by an unrelated reshuffle.
  for (FileId f : keys) {
    const std::vector<NodeId> old_group = before.replicas(f, kReplication);
    if (std::find(old_group.begin(), old_group.end(), NodeId{7}) ==
        old_group.end()) {
      EXPECT_EQ(after.replicas(f, kReplication), old_group);
    }
  }
}

TEST(HashRingTest, IncarnationsGiveReusedIdsFreshPlacement) {
  // Incarnation 0 must hash exactly as before incarnations existed, so a
  // ring that never reuses ids is byte-identical to the old behavior.
  HashRing plain = ring_of(8);
  HashRing inc0;
  for (NodeId n = 0; n < 8; ++n) inc0.add_node(n, 0);
  const std::vector<FileId> keys = keyset(4000);
  for (FileId f : keys) {
    ASSERT_EQ(plain.replicas(f, 3), inc0.replicas(f, 3));
  }
  EXPECT_EQ(plain.incarnation_of(3), 0u);

  // A reused id under a bumped incarnation owns different vnode points,
  // so a dead incarnation's placement decisions can never alias the new
  // life's.
  HashRing reused = ring_of(8);
  reused.remove_node(3);
  reused.add_node(3, 1);
  EXPECT_EQ(reused.incarnation_of(3), 1u);
  EXPECT_EQ(reused.node_count(), 8u);
  std::size_t diverged = 0;
  for (FileId f : keys) {
    if (reused.replicas(f, 3) != plain.replicas(f, 3)) ++diverged;
  }
  EXPECT_GT(diverged, 0u) << "incarnation salt had no effect on placement";
  // ...but only groups that touch the reincarnated id can differ.
  for (FileId f : keys) {
    const std::vector<NodeId> old_group = plain.replicas(f, 3);
    const std::vector<NodeId> new_group = reused.replicas(f, 3);
    if (old_group != new_group) {
      const bool involves3 =
          std::find(old_group.begin(), old_group.end(), NodeId{3}) !=
              old_group.end() ||
          std::find(new_group.begin(), new_group.end(), NodeId{3}) !=
              new_group.end();
      EXPECT_TRUE(involves3) << "unrelated group reshuffled for file " << f;
    }
  }
  // Removing the node again drops its incarnation record.
  reused.remove_node(3);
  EXPECT_EQ(reused.incarnation_of(3), 0u);
}

}  // namespace
}  // namespace idea::shard
