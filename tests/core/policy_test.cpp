#include "core/policy.hpp"

#include <gtest/gtest.h>

namespace idea::core {
namespace {

vv::ExtendedVersionVector evv_with(NodeId writer,
                                   std::initializer_list<int> stamps_sec) {
  vv::ExtendedVersionVector e;
  for (int s : stamps_sec) e.record_update(writer, sec(s), 0.0);
  return e;
}

TEST(Policy, UserIdWinnerIsMaxFairId) {
  PolicyContext ctx;
  ctx.policy = ResolutionPolicy::kUserId;
  ctx.deployment_seed = 2007;
  Gathered g{{0, {}}, {1, {}}, {2, {}}, {3, {}}};
  const NodeId winner = choose_winner(ctx, g);
  FairId best = 0;
  NodeId expect = kNoNode;
  for (NodeId n = 0; n < 4; ++n) {
    if (fair_id(n, 2007) > best) {
      best = fair_id(n, 2007);
      expect = n;
    }
  }
  EXPECT_EQ(winner, expect);
}

TEST(Policy, UserIdWinnerDependsOnSeed) {
  Gathered g{{0, {}}, {1, {}}, {2, {}}, {3, {}}, {4, {}}, {5, {}}};
  PolicyContext a, b;
  a.policy = b.policy = ResolutionPolicy::kUserId;
  a.deployment_seed = 1;
  b.deployment_seed = 99;
  bool differs = false;
  // With several seeds the winner must change at least once; randomized
  // IDs are the fairness mechanism (§4.5.1).
  for (std::uint64_t seed = 0; seed < 20 && !differs; ++seed) {
    b.deployment_seed = seed;
    if (choose_winner(a, g) != choose_winner(b, g)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Policy, PriorityWinnerIsHighestPriority) {
  PolicyContext ctx;
  ctx.policy = ResolutionPolicy::kPriority;
  ctx.priorities = {{0, 1}, {1, 5}, {2, 3}};
  Gathered g{{0, {}}, {1, {}}, {2, {}}};
  EXPECT_EQ(choose_winner(ctx, g), 1u);
}

TEST(Policy, PriorityTieBrokenByFairId) {
  PolicyContext ctx;
  ctx.policy = ResolutionPolicy::kPriority;
  ctx.deployment_seed = 11;
  ctx.priorities = {{0, 5}, {1, 5}};
  Gathered g{{0, {}}, {1, {}}};
  const NodeId expect =
      fair_id(0, 11) > fair_id(1, 11) ? 0u : 1u;
  EXPECT_EQ(choose_winner(ctx, g), expect);
}

TEST(Policy, PriorityMissingDefaultsToZero) {
  PolicyContext ctx;
  ctx.policy = ResolutionPolicy::kPriority;
  ctx.priorities = {{2, 1}};
  Gathered g{{0, {}}, {1, {}}, {2, {}}};
  EXPECT_EQ(choose_winner(ctx, g), 2u);
}

TEST(Policy, InvalidateBothUsesReference) {
  PolicyContext ctx;
  ctx.policy = ResolutionPolicy::kInvalidateBoth;
  Gathered g{{2, evv_with(2, {1})}, {5, evv_with(5, {1})}};
  // Concurrent states: highest id is the reference anchor.
  EXPECT_EQ(choose_winner(ctx, g), 5u);
}

TEST(Policy, EmptyParticipants) {
  PolicyContext ctx;
  EXPECT_EQ(choose_winner(ctx, {}), kNoNode);
}

TEST(Policy, GroupLastConsistentPairwiseMin) {
  // Three replicas: a and b share updates through t=4; c diverges at t=2.
  vv::ExtendedVersionVector a, b, c;
  a.record_update(0, sec(1), 0);
  a.record_update(0, sec(4), 0);
  b = a;
  c.record_update(0, sec(1), 0);
  c.record_update(9, sec(2), 0);
  const SimTime cutoff = group_last_consistent({{0, a}, {1, b}, {2, c}});
  EXPECT_EQ(cutoff, sec(1));
}

TEST(Policy, GroupLastConsistentIdenticalGroup) {
  vv::ExtendedVersionVector a = evv_with(0, {1, 2, 3});
  const SimTime cutoff = group_last_consistent({{0, a}, {1, a}});
  EXPECT_EQ(cutoff, sec(3));
}

TEST(Policy, GroupLastConsistentSingleton) {
  vv::ExtendedVersionVector a = evv_with(0, {5});
  EXPECT_EQ(group_last_consistent({{0, a}}), sec(5));
}

TEST(Policy, UpdatesAfterCutoff) {
  vv::ExtendedVersionVector m;
  m.record_update(0, sec(1), 0);
  m.record_update(0, sec(5), 0);
  m.record_update(1, sec(3), 0);
  m.record_update(1, sec(7), 0);
  const auto keys = updates_after(m, sec(3));
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], (std::pair<NodeId, std::uint64_t>{0, 2}));
  EXPECT_EQ(keys[1], (std::pair<NodeId, std::uint64_t>{1, 2}));
}

TEST(Policy, UpdatesAfterNothing) {
  vv::ExtendedVersionVector m = evv_with(0, {1, 2});
  EXPECT_TRUE(updates_after(m, sec(10)).empty());
}

TEST(Policy, UpdatesNotInWinner) {
  vv::ExtendedVersionVector merged, winner;
  merged.record_update(0, sec(1), 0);
  merged.record_update(1, sec(2), 0);
  winner.record_update(0, sec(1), 0);
  const auto losers = updates_not_in(merged, winner);
  ASSERT_EQ(losers.size(), 1u);
  EXPECT_EQ(losers[0], (std::pair<NodeId, std::uint64_t>{1, 1}));
}

}  // namespace
}  // namespace idea::core
