#include "core/controller.hpp"

#include <gtest/gtest.h>

namespace idea::core {
namespace {

struct Harness {
  int demands = 0;
  SimDuration last_period = 0;
  int period_sets = 0;

  AdaptiveController make(ControllerConfig cfg) {
    return AdaptiveController(
        cfg, [this] { ++demands; },
        [this](SimDuration p) {
          last_period = p;
          ++period_sets;
        });
  }
};

TEST(Controller, HintModeDemandsBelowHint) {
  Harness h;
  ControllerConfig cfg;
  cfg.mode = AdaptiveMode::kHintBased;
  cfg.hint = 0.95;
  auto c = h.make(cfg);
  c.observe_level(0.97, sec(1));
  EXPECT_EQ(h.demands, 0);
  c.observe_level(0.94, sec(2));
  EXPECT_EQ(h.demands, 1);
}

TEST(Controller, CooldownSuppressesBurst) {
  Harness h;
  ControllerConfig cfg;
  cfg.mode = AdaptiveMode::kHintBased;
  cfg.hint = 0.95;
  cfg.demand_cooldown = sec(5);
  auto c = h.make(cfg);
  c.observe_level(0.90, sec(10));
  c.observe_level(0.89, sec(11));
  c.observe_level(0.88, sec(12));
  EXPECT_EQ(h.demands, 1);
  c.observe_level(0.88, sec(16));
  EXPECT_EQ(h.demands, 2);
}

TEST(Controller, OnDemandModeIgnoresLevels) {
  Harness h;
  ControllerConfig cfg;
  cfg.mode = AdaptiveMode::kOnDemand;
  cfg.hint = 0.95;
  auto c = h.make(cfg);
  c.observe_level(0.2, sec(1));
  EXPECT_EQ(h.demands, 0);
}

TEST(Controller, ZeroHintDisablesHintControl) {
  Harness h;
  ControllerConfig cfg;
  cfg.mode = AdaptiveMode::kHintBased;
  cfg.hint = 0.0;  // Table 1: "not a hint-based system"
  auto c = h.make(cfg);
  c.observe_level(0.1, sec(1));
  EXPECT_EQ(h.demands, 0);
}

TEST(Controller, UserUnsatisfiedLearnsHigherLevel) {
  Harness h;
  ControllerConfig cfg;
  cfg.mode = AdaptiveMode::kOnDemand;
  cfg.hint = 0.90;
  cfg.hint_delta = 0.02;
  auto c = h.make(cfg);
  c.user_unsatisfied(sec(1));
  EXPECT_EQ(h.demands, 1);
  EXPECT_NEAR(c.hint(), 0.92, 1e-12);  // L1 + delta
  c.user_unsatisfied(sec(10));
  EXPECT_NEAR(c.hint(), 0.94, 1e-12);
}

TEST(Controller, HintCapsAtOne) {
  Harness h;
  ControllerConfig cfg;
  cfg.hint = 0.99;
  cfg.hint_delta = 0.05;
  auto c = h.make(cfg);
  c.user_unsatisfied(sec(1));
  EXPECT_DOUBLE_EQ(c.hint(), 1.0);
}

TEST(Controller, SetHintClamped) {
  Harness h;
  auto c = h.make(ControllerConfig{});
  c.set_hint(1.5);
  EXPECT_DOUBLE_EQ(c.hint(), 1.0);
  c.set_hint(-0.5);
  EXPECT_DOUBLE_EQ(c.hint(), 0.0);
  c.set_hint(0.85);
  EXPECT_DOUBLE_EQ(c.hint(), 0.85);
}

TEST(Controller, RehintTakesEffectImmediately) {
  // Figure 8: hint 95% for the first half, 90% after.
  Harness h;
  ControllerConfig cfg;
  cfg.mode = AdaptiveMode::kHintBased;
  cfg.hint = 0.95;
  auto c = h.make(cfg);
  c.observe_level(0.93, sec(1));
  EXPECT_EQ(h.demands, 1);
  c.set_hint(0.90);
  c.observe_level(0.93, sec(10));
  EXPECT_EQ(h.demands, 1);  // 0.93 >= 0.90: acceptable now
  c.observe_level(0.89, sec(20));
  EXPECT_EQ(h.demands, 2);
}

TEST(Controller, Formula4Frequency) {
  Harness h;
  ControllerConfig cfg;
  cfg.mode = AdaptiveMode::kFullyAutomatic;
  cfg.bandwidth_cap_fraction = 0.2;
  cfg.available_bandwidth = 100'000;  // bytes/sec
  auto c = h.make(cfg);
  c.observe_round_cost(40'000);  // c bytes per round
  const double freq = c.adjust_frequency();
  // optimal = 100000 * 0.2 / 40000 = 0.5 Hz -> period 2 s.
  EXPECT_NEAR(freq, 0.5, 1e-9);
  EXPECT_EQ(h.last_period, sec(2));
}

TEST(Controller, Formula4TracksBandwidthChanges) {
  Harness h;
  ControllerConfig cfg;
  cfg.mode = AdaptiveMode::kFullyAutomatic;
  cfg.bandwidth_cap_fraction = 0.2;
  cfg.available_bandwidth = 100'000;
  auto c = h.make(cfg);
  c.observe_round_cost(40'000);
  c.adjust_frequency();
  c.observe_bandwidth(50'000);  // load spike halves available bandwidth
  EXPECT_NEAR(c.adjust_frequency(), 0.25, 1e-9);
}

TEST(Controller, OversellRaisesLowerBound) {
  Harness h;
  ControllerConfig cfg;
  cfg.mode = AdaptiveMode::kFullyAutomatic;
  cfg.available_bandwidth = 1000;  // tiny: formula wants a low frequency
  cfg.bound_step = 1.5;
  auto c = h.make(cfg);
  c.observe_round_cost(100'000);
  const double before = c.adjust_frequency();
  c.notify_oversell();
  const double after = c.adjust_frequency();
  EXPECT_GT(after, before);
  EXPECT_GE(c.learned_min_freq(), before);
}

TEST(Controller, UndersellLowersUpperBound) {
  Harness h;
  ControllerConfig cfg;
  cfg.mode = AdaptiveMode::kFullyAutomatic;
  cfg.available_bandwidth = 1'000'000'000;  // formula wants a huge frequency
  cfg.bound_step = 1.5;
  auto c = h.make(cfg);
  c.observe_round_cost(100);
  const double before = c.adjust_frequency();
  c.notify_undersell();
  const double after = c.adjust_frequency();
  EXPECT_LT(after, before);
  EXPECT_LE(c.learned_max_freq(), before);
}

TEST(Controller, BoundsLearnOverTime) {
  // §5.2: over time IDEA learns the [min, max] frequency window.
  Harness h;
  ControllerConfig cfg;
  cfg.mode = AdaptiveMode::kFullyAutomatic;
  auto c = h.make(cfg);
  c.observe_round_cost(10'000);
  const double min0 = c.learned_min_freq();
  const double max0 = c.learned_max_freq();
  for (int i = 0; i < 3; ++i) {
    c.adjust_frequency();
    c.notify_oversell();
  }
  EXPECT_GT(c.learned_min_freq(), min0);
  for (int i = 0; i < 3; ++i) {
    c.adjust_frequency();
    c.notify_undersell();
  }
  EXPECT_LT(c.learned_max_freq(), max0);
}

TEST(Controller, FrequencyClampedToAbsoluteLimits) {
  Harness h;
  ControllerConfig cfg;
  cfg.mode = AdaptiveMode::kFullyAutomatic;
  cfg.min_freq_hz = 0.01;
  cfg.max_freq_hz = 1.0;
  auto c = h.make(cfg);
  c.observe_round_cost(1.0);  // near-free rounds: formula explodes
  EXPECT_DOUBLE_EQ(c.adjust_frequency(), 1.0);
  c.observe_round_cost(1e12);  // absurdly costly rounds
  c.observe_round_cost(1e12);
  c.observe_round_cost(1e12);
  c.observe_round_cost(1e12);
  c.observe_round_cost(1e12);
  c.observe_round_cost(1e12);
  c.observe_round_cost(1e12);
  c.observe_round_cost(1e12);
  c.observe_round_cost(1e12);
  c.observe_round_cost(1e12);
  EXPECT_GE(c.adjust_frequency(), 0.01);
}

TEST(Controller, NoAdjustmentWithoutCostObservation) {
  Harness h;
  ControllerConfig cfg;
  cfg.mode = AdaptiveMode::kFullyAutomatic;
  auto c = h.make(cfg);
  const double before = c.current_freq_hz();
  EXPECT_DOUBLE_EQ(c.adjust_frequency(), before);
}

TEST(Controller, DemandCounter) {
  Harness h;
  ControllerConfig cfg;
  cfg.mode = AdaptiveMode::kHintBased;
  cfg.hint = 0.9;
  cfg.demand_cooldown = 0;
  auto c = h.make(cfg);
  c.observe_level(0.5, sec(1));
  c.observe_level(0.5, sec(2));
  EXPECT_EQ(c.demands_issued(), 2u);
  EXPECT_EQ(h.demands, 2);
}

}  // namespace
}  // namespace idea::core
