#include "core/formula.hpp"

#include <gtest/gtest.h>

namespace idea::core {
namespace {

using vv::TactTriple;
using vv::TripleMaxima;
using vv::TripleWeights;

TEST(Formula, PerfectConsistencyIsOne) {
  EXPECT_DOUBLE_EQ(
      consistency_level(TactTriple{}, TripleWeights{}, TripleMaxima{}), 1.0);
}

TEST(Formula, MaxErrorsGiveZero) {
  const TripleMaxima m{10, 10, 10};
  EXPECT_DOUBLE_EQ(
      consistency_level(TactTriple{10, 10, 10}, TripleWeights{}, m), 0.0);
}

TEST(Formula, PaperExampleEqualWeights) {
  // §4.4.1: errors <3, 2, 2> with maxima 10 and equal weights:
  // level = ((7/10) + (8/10) + (8/10)) / 3.
  const TripleMaxima m{10, 10, 10};
  const double level =
      consistency_level(TactTriple{3, 2, 2}, TripleWeights{}, m);
  EXPECT_NEAR(level, (0.7 + 0.8 + 0.8) / 3.0, 1e-12);
}

TEST(Formula, ErrorsClampAtMaximum) {
  const TripleMaxima m{10, 10, 10};
  const double level =
      consistency_level(TactTriple{100, 100, 100}, TripleWeights{}, m);
  EXPECT_DOUBLE_EQ(level, 0.0);
}

TEST(Formula, NegativeErrorsClampAtZero) {
  const TripleMaxima m{10, 10, 10};
  const double level =
      consistency_level(TactTriple{-5, 0, 0}, TripleWeights{}, m);
  EXPECT_DOUBLE_EQ(level, 1.0);
}

TEST(Formula, ZeroWeightIgnoresMetric) {
  // weight<0.4, 0, 0.6> marks order error as irrelevant (Table 1 example).
  const TripleMaxima m{10, 10, 10};
  const TripleWeights w{0.4, 0.0, 0.6};
  const double with_huge_order =
      consistency_level(TactTriple{0, 10, 0}, w, m);
  EXPECT_DOUBLE_EQ(with_huge_order, 1.0);
}

TEST(Formula, WeightsNormalized) {
  // Weights <2,2,2> must behave exactly like <1/3,1/3,1/3>.
  const TripleMaxima m{10, 10, 10};
  const TactTriple t{5, 5, 5};
  EXPECT_DOUBLE_EQ(consistency_level(t, TripleWeights{2, 2, 2}, m),
                   consistency_level(t, TripleWeights{}, m));
}

TEST(Formula, MonotoneInEachError) {
  const TripleMaxima m{10, 10, 10};
  const TripleWeights w{};
  double prev = 1.1;
  for (double e = 0; e <= 10; e += 1) {
    const double level = consistency_level(TactTriple{e, 0, 0}, w, m);
    EXPECT_LT(level, prev);
    prev = level;
  }
}

TEST(Formula, HigherWeightAmplifiesMetric) {
  const TripleMaxima m{10, 10, 10};
  const TactTriple t{0, 5, 0};  // only order error
  const double low_w = consistency_level(t, TripleWeights{0.45, 0.1, 0.45}, m);
  const double high_w = consistency_level(t, TripleWeights{0.15, 0.7, 0.15}, m);
  EXPECT_GT(low_w, high_w);
}

TEST(Formula, InverseHelperRoundTrips) {
  const TripleMaxima m{10, 10, 10};
  const double err = max_uniform_error_for_level(0.9, m);
  const double level =
      consistency_level(TactTriple{err, err, err}, TripleWeights{}, m);
  EXPECT_NEAR(level, 0.9, 1e-9);
}

// Property sweep: level always lands in [0,1] over a parameter grid.
class FormulaBounds
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(FormulaBounds, AlwaysInUnitInterval) {
  const auto [num, order, stale] = GetParam();
  const TripleMaxima m{7, 13, 29};
  for (const TripleWeights& w :
       {TripleWeights{}, TripleWeights{0.7, 0.2, 0.1},
        TripleWeights{0, 0.5, 0.5}, TripleWeights{1, 0, 0}}) {
    const double level =
        consistency_level(TactTriple{num, order, stale}, w, m);
    EXPECT_GE(level, 0.0);
    EXPECT_LE(level, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FormulaBounds,
    ::testing::Combine(::testing::Values(0.0, 3.0, 7.0, 50.0),
                       ::testing::Values(0.0, 6.5, 13.0, 100.0),
                       ::testing::Values(0.0, 14.5, 29.0, 1000.0)));

}  // namespace
}  // namespace idea::core
