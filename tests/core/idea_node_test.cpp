#include "core/idea_node.hpp"

#include <gtest/gtest.h>

#include "core/cluster.hpp"

namespace idea::core {
namespace {

ClusterConfig small_cluster(std::uint32_t nodes = 8) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.sync_sizes();
  cfg.idea.ransub.epoch = sec(3);
  return cfg;
}

TEST(IdeaNode, WriteAppliesLocally) {
  IdeaCluster cluster(small_cluster());
  cluster.start();
  EXPECT_TRUE(cluster.node(2).write("hello", 1.5));
  EXPECT_EQ(cluster.node(2).store().update_count(), 1u);
  EXPECT_DOUBLE_EQ(cluster.node(2).store().meta_value(), 1.5);
}

TEST(IdeaNode, ReadReturnsCanonicalOrder) {
  IdeaCluster cluster(small_cluster());
  cluster.start();
  cluster.node(2).write("first", 1.0);
  cluster.run_for(sec(1));
  cluster.node(2).write("second", 1.0);
  const auto contents = cluster.node(2).read();
  ASSERT_EQ(contents.size(), 2u);
  EXPECT_EQ(contents[0].content, "first");
  EXPECT_EQ(contents[1].content, "second");
}

TEST(IdeaNode, Table1ApiRoundTrip) {
  IdeaCluster cluster(small_cluster());
  cluster.start();
  IdeaNode& n = cluster.node(0);
  n.set_consistency_metric(20, 30, 40);
  EXPECT_DOUBLE_EQ(n.config().maxima.numerical, 20);
  EXPECT_DOUBLE_EQ(n.config().maxima.order, 30);
  EXPECT_DOUBLE_EQ(n.config().maxima.staleness_sec, 40);
  n.set_weight(0.5, 0.2, 0.3);
  EXPECT_DOUBLE_EQ(n.config().weights.numerical, 0.5);
  n.set_resolution(3);
  EXPECT_EQ(n.config().resolution.policy.policy,
            ResolutionPolicy::kPriority);
  n.set_hint(0.85);
  EXPECT_DOUBLE_EQ(n.controller().hint(), 0.85);
}

TEST(IdeaNode, TopLayerFormsFromWrites) {
  IdeaCluster cluster(small_cluster());
  cluster.start();
  cluster.warm_up({1, 5}, sec(20));
  const auto tl_1 = cluster.node(1).top_layer();
  const auto tl_7 = cluster.node(7).top_layer();  // non-writer's view
  EXPECT_EQ(tl_1, (std::vector<NodeId>{1, 5}));
  EXPECT_EQ(tl_7, (std::vector<NodeId>{1, 5}));
}

TEST(IdeaNode, LevelDropsOnConflictAndListenerFires) {
  IdeaCluster cluster(small_cluster());
  cluster.start();
  cluster.warm_up({1, 5}, sec(20));
  int samples = 0;
  double min_level = 1.0;
  cluster.node(1).set_level_listener([&](const LevelSample& s) {
    ++samples;
    min_level = std::min(min_level, s.level);
  });
  cluster.node(1).write("a", 3.0);
  cluster.node(5).write("b", 4.0);
  cluster.run_for(sec(3));
  EXPECT_GT(samples, 0);
  EXPECT_LT(min_level, 1.0);
}

TEST(IdeaNode, DemandActiveResolutionConverges) {
  ClusterConfig cfg = small_cluster();
  cfg.idea.controller.mode = AdaptiveMode::kOnDemand;
  IdeaCluster cluster(cfg);
  cluster.start();
  cluster.warm_up({1, 5}, sec(20));
  cluster.node(1).write("a", 3.0);
  cluster.node(5).write("b", 4.0);
  cluster.run_for(sec(2));
  EXPECT_TRUE(cluster.node(1).demand_active_resolution());
  cluster.run_for(sec(5));
  EXPECT_TRUE(cluster.converged({1, 5}));
  EXPECT_DOUBLE_EQ(cluster.node(1).current_level(), 1.0);
}

TEST(IdeaNode, HintModeResolvesAutomatically) {
  ClusterConfig cfg = small_cluster();
  cfg.idea.controller.mode = AdaptiveMode::kHintBased;
  cfg.idea.controller.hint = 0.95;
  cfg.idea.maxima = vv::TripleMaxima{10, 10, 10};
  IdeaCluster cluster(cfg);
  cluster.start();
  cluster.warm_up({1, 5}, sec(20));
  cluster.node(1).write("a", 3.0);
  cluster.node(5).write("b", 9.0);
  cluster.run_for(sec(10));
  // No user intervention: the hint controller resolved the conflict.
  EXPECT_TRUE(cluster.converged({1, 5}));
}

TEST(IdeaNode, WritesBlockedDuringResolutionAreCounted) {
  ClusterConfig cfg = small_cluster();
  IdeaCluster cluster(cfg);
  cluster.start();
  cluster.warm_up({1, 5}, sec(20));
  cluster.node(1).write("a", 1.0);
  cluster.node(5).write("b", 1.0);
  cluster.run_for(sec(2));
  cluster.node(1).demand_active_resolution();
  // Try to write mid-round: run a tiny slice so the round is in phase 2.
  cluster.run_for(msec(400));
  const bool accepted = cluster.node(1).write("blocked?", 1.0);
  if (!accepted) {
    EXPECT_GE(cluster.node(1).blocked_writes(), 1u);
  }
  cluster.run_for(sec(5));
  EXPECT_FALSE(cluster.node(1).resolution().busy());
}

TEST(IdeaNode, UserUnsatisfiedRaisesHintAndResolves) {
  ClusterConfig cfg = small_cluster();
  cfg.idea.controller.mode = AdaptiveMode::kOnDemand;
  cfg.idea.controller.hint = 0.9;
  cfg.idea.controller.hint_delta = 0.02;
  IdeaCluster cluster(cfg);
  cluster.start();
  cluster.warm_up({1, 5}, sec(20));
  cluster.node(1).write("a", 2.0);
  cluster.node(5).write("b", 5.0);
  cluster.run_for(sec(2));
  cluster.node(1).user_unsatisfied();
  EXPECT_NEAR(cluster.node(1).controller().hint(), 0.92, 1e-12);
  cluster.run_for(sec(5));
  EXPECT_TRUE(cluster.converged({1, 5}));
}

TEST(IdeaNode, SetBackgroundFreqArmsPeriodicResolution) {
  ClusterConfig cfg = small_cluster();
  IdeaCluster cluster(cfg);
  cluster.start();
  cluster.warm_up({1, 5}, sec(20));
  std::uint64_t rounds_seen = 0;
  cluster.node(1).set_round_listener(
      [&](const RoundStats& s) { rounds_seen += s.succeeded ? 1 : 0; });
  cluster.node(1).set_background_freq(0.2);  // every 5 s
  cluster.node(1).write("a", 1.0);
  cluster.node(5).write("b", 1.0);
  cluster.run_for(sec(21));
  EXPECT_GE(rounds_seen, 3u);
  EXPECT_TRUE(cluster.converged({1, 5}));
  // Stop: counter freezes.
  cluster.node(1).set_background_freq(0.0);
  const auto frozen = rounds_seen;
  cluster.run_for(sec(20));
  EXPECT_EQ(rounds_seen, frozen);
}

TEST(IdeaNode, OnlyDesignatedInitiatorRunsBackground) {
  ClusterConfig cfg = small_cluster();
  cfg.idea.background_period = sec(5);
  IdeaCluster cluster(cfg);
  cluster.start();
  cluster.warm_up({1, 5}, sec(20));
  cluster.node(1).write("a", 1.0);
  cluster.node(5).write("b", 1.0);
  cluster.run_for(sec(20));
  // Node 1 is the lowest-id top-layer member: the designated initiator.
  EXPECT_GT(cluster.node(1).resolution().rounds_initiated(), 0u);
  EXPECT_EQ(cluster.node(5).resolution().rounds_initiated(), 0u);
}

TEST(IdeaNode, ProbeCallbackDeliversResult) {
  IdeaCluster cluster(small_cluster());
  cluster.start();
  cluster.warm_up({1, 5}, sec(20));
  cluster.node(5).write("x", 2.0);
  bool got = false;
  cluster.node(1).probe([&](const detect::DetectionResult& r) {
    got = true;
    EXPECT_TRUE(r.conflict);
  });
  cluster.run_for(sec(3));
  EXPECT_TRUE(got);
}

}  // namespace
}  // namespace idea::core
