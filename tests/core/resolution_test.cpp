#include "core/resolution.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "net/dispatcher.hpp"
#include "net/sim_transport.hpp"

namespace idea::core {
namespace {

// Resolution managers over bare stores with a fixed top layer.
class ResolutionFixture : public ::testing::Test {
 protected:
  static constexpr FileId kFile = 1;

  void Build(std::uint32_t nodes, ResolutionConfig config = {}) {
    nodes_ = nodes;
    top_layer_.clear();
    for (NodeId n = 0; n < nodes; ++n) top_layer_.push_back(n);
    config.policy.deployment_seed = 2007;
    transport_ = std::make_unique<net::SimTransport>(sim_, latency_);
    for (NodeId n = 0; n < nodes; ++n) {
      stores_.push_back(std::make_unique<replica::ReplicaStore>(n, kFile));
      dispatchers_.push_back(std::make_unique<net::Dispatcher>());
      managers_.push_back(std::make_unique<ResolutionManager>(
          n, kFile, *transport_, *stores_[n], [this] { return top_layer_; },
          config, 700 + n));
      dispatchers_[n]->route("resolve.", managers_[n].get());
      transport_->attach(n, dispatchers_[n].get());
    }
  }

  void diverge() {
    // Each node writes one private update: pairwise concurrent histories.
    for (NodeId n = 0; n < nodes_; ++n) {
      stores_[n]->apply_local(sec(1) + msec(n), "u" + std::to_string(n),
                              1.0 + n);
    }
  }

  [[nodiscard]] bool converged() const {
    const auto digest = stores_[0]->content_digest();
    for (const auto& s : stores_) {
      if (s->content_digest() != digest) return false;
    }
    return true;
  }

  sim::Simulator sim_;
  sim::ConstantLatency latency_{msec(25)};
  std::unique_ptr<net::SimTransport> transport_;
  std::uint32_t nodes_ = 0;
  std::vector<NodeId> top_layer_;
  std::vector<std::unique_ptr<replica::ReplicaStore>> stores_;
  std::vector<std::unique_ptr<net::Dispatcher>> dispatchers_;
  std::vector<std::unique_ptr<ResolutionManager>> managers_;
};

TEST_F(ResolutionFixture, BackgroundRoundConverges) {
  Build(4);
  diverge();
  EXPECT_FALSE(converged());
  RoundStats stats;
  managers_[0]->set_round_callback([&](const RoundStats& s) { stats = s; });
  EXPECT_TRUE(managers_[0]->start_background());
  sim_.run_until(sec(30));
  EXPECT_TRUE(stats.succeeded);
  EXPECT_FALSE(stats.active);
  EXPECT_EQ(stats.participants, 4u);
  EXPECT_TRUE(converged());
  // Every replica ends with all four updates known.
  for (const auto& s : stores_) {
    EXPECT_EQ(s->evv().total_updates(), 4u);
  }
}

TEST_F(ResolutionFixture, ActiveRoundConverges) {
  Build(4);
  diverge();
  RoundStats stats;
  managers_[2]->set_round_callback([&](const RoundStats& s) { stats = s; });
  EXPECT_TRUE(managers_[2]->start_active());
  sim_.run_until(sec(30));
  EXPECT_TRUE(stats.succeeded);
  EXPECT_TRUE(stats.active);
  EXPECT_EQ(stats.backoffs, 0);
  EXPECT_TRUE(converged());
}

TEST_F(ResolutionFixture, UserIdPolicyInvalidatesLosers) {
  ResolutionConfig cfg;
  cfg.policy.policy = ResolutionPolicy::kUserId;
  Build(3, cfg);
  diverge();
  managers_[0]->start_background();
  sim_.run_until(sec(30));
  EXPECT_TRUE(converged());
  // Exactly one of the three concurrent updates survives (the winner's);
  // the two losers are invalidated everywhere.
  std::size_t live = 0;
  for (const auto& u : stores_[0]->ordered_contents()) {
    if (!u.invalidated) ++live;
  }
  EXPECT_EQ(live, 1u);
}

TEST_F(ResolutionFixture, InvalidateBothClearsConflictWindow) {
  ResolutionConfig cfg;
  cfg.policy.policy = ResolutionPolicy::kInvalidateBoth;
  Build(3, cfg);
  diverge();
  managers_[0]->start_background();
  sim_.run_until(sec(30));
  EXPECT_TRUE(converged());
  // All concurrent updates are cleared (no survivor favoritism).
  for (const auto& u : stores_[0]->ordered_contents()) {
    EXPECT_TRUE(u.invalidated);
  }
}

TEST_F(ResolutionFixture, PriorityPolicyWinnerSurvives) {
  ResolutionConfig cfg;
  cfg.policy.policy = ResolutionPolicy::kPriority;
  cfg.policy.priorities = {{1, 10}};
  Build(3, cfg);
  diverge();
  managers_[0]->start_background();
  sim_.run_until(sec(30));
  EXPECT_TRUE(converged());
  for (const auto& u : stores_[0]->ordered_contents()) {
    EXPECT_EQ(!u.invalidated, u.key.writer == 1u)
        << "only the priority winner's update survives";
  }
}

TEST_F(ResolutionFixture, ComparableHistoriesJustCatchUp) {
  Build(2);
  // Node 0 is simply ahead; no conflict, nothing to invalidate.
  stores_[0]->apply_local(sec(1), "a", 1.0);
  stores_[0]->apply_local(sec(2), "b", 1.0);
  managers_[0]->start_background();
  sim_.run_until(sec(30));
  EXPECT_TRUE(converged());
  for (const auto& u : stores_[1]->ordered_contents()) {
    EXPECT_FALSE(u.invalidated);
  }
}

TEST_F(ResolutionFixture, SequentialCollectTimingLinear) {
  ResolutionConfig cfg;
  cfg.collect_processing = msec(8);
  Build(4, cfg);
  diverge();
  RoundStats stats;
  managers_[0]->set_round_callback([&](const RoundStats& s) { stats = s; });
  managers_[0]->start_background();
  sim_.run_until(sec(30));
  // Sequential phase 2 over 3 peers: each costs RTT (50 ms) + processing
  // (8 ms) = 58 ms, so ~174 ms total.
  EXPECT_EQ(stats.phase2_collect, 3 * (msec(50) + msec(8)));
}

TEST_F(ResolutionFixture, ParallelCollectFasterThanSequential) {
  ResolutionConfig seq_cfg, par_cfg;
  par_cfg.parallel_collect = true;
  Build(4, par_cfg);
  diverge();
  RoundStats stats;
  managers_[0]->set_round_callback([&](const RoundStats& s) { stats = s; });
  managers_[0]->start_background();
  sim_.run_until(sec(30));
  EXPECT_TRUE(stats.succeeded);
  // Parallel phase 2 ~ one RTT + processing, far below 3x.
  EXPECT_LE(stats.phase2_collect, msec(50) + msec(8) + msec(1));
  EXPECT_TRUE(converged());
}

TEST_F(ResolutionFixture, ActivePhase1TimingRecorded) {
  Build(4);
  diverge();
  RoundStats stats;
  managers_[0]->set_round_callback([&](const RoundStats& s) { stats = s; });
  managers_[0]->start_active();
  sim_.run_until(sec(30));
  // Dispatch cost: 3 peers x cpu_per_send (150 us) = 0.45 ms — the Table 2
  // "Phase 1" quantity.
  EXPECT_EQ(stats.phase1_dispatch, 3 * usec(150));
  // Ack wait: one RTT with constant latency.
  EXPECT_EQ(stats.phase1_total, msec(50));
}

TEST_F(ResolutionFixture, CompetingInitiatorsBothEventuallyResolve) {
  Build(4);
  diverge();
  int succeeded = 0, suppressed = 0;
  for (NodeId n : {0u, 3u}) {
    managers_[n]->set_round_callback([&](const RoundStats& s) {
      if (s.succeeded) ++succeeded;
      if (s.suppressed) ++suppressed;
    });
  }
  EXPECT_TRUE(managers_[0]->start_active());
  EXPECT_TRUE(managers_[3]->start_active());
  sim_.run_until(sec(60));
  // At least one round succeeds; the system converges regardless of who won.
  EXPECT_GE(succeeded, 1);
  EXPECT_TRUE(converged());
}

TEST_F(ResolutionFixture, StartRejectedWhileRunning) {
  Build(4);
  diverge();
  EXPECT_TRUE(managers_[0]->start_active());
  EXPECT_FALSE(managers_[0]->start_active());
  EXPECT_FALSE(managers_[0]->start_background());
  sim_.run_until(sec(30));
  EXPECT_TRUE(managers_[0]->start_background());  // idle again
}

TEST_F(ResolutionFixture, BusyDuringRound) {
  Build(4);
  diverge();
  managers_[0]->start_background();
  // Step a little into the round: initiator must report busy.
  sim_.run_until(msec(80));
  EXPECT_TRUE(managers_[0]->busy());
  sim_.run_until(sec(30));
  EXPECT_FALSE(managers_[0]->busy());
  for (const auto& m : managers_) EXPECT_FALSE(m->busy());
}

TEST_F(ResolutionFixture, DeadMemberSkippedByTimeout) {
  ResolutionConfig cfg;
  cfg.collect_timeout = msec(600);
  Build(4, cfg);
  diverge();
  transport_->detach(2);
  RoundStats stats;
  managers_[0]->set_round_callback([&](const RoundStats& s) { stats = s; });
  managers_[0]->start_background();
  sim_.run_until(sec(30));
  EXPECT_TRUE(stats.succeeded);
  // The three live members converge.
  EXPECT_EQ(stores_[0]->content_digest(), stores_[1]->content_digest());
  EXPECT_EQ(stores_[0]->content_digest(), stores_[3]->content_digest());
}

TEST_F(ResolutionFixture, EmptyTopLayerTrivialSuccess) {
  Build(1);
  top_layer_ = {0};
  RoundStats stats;
  managers_[0]->set_round_callback([&](const RoundStats& s) { stats = s; });
  EXPECT_TRUE(managers_[0]->start_background());
  EXPECT_TRUE(stats.succeeded);
  EXPECT_EQ(stats.participants, 1u);
}

TEST_F(ResolutionFixture, StatsCountShippedUpdates) {
  Build(3);
  diverge();
  RoundStats stats;
  managers_[0]->set_round_callback([&](const RoundStats& s) { stats = s; });
  managers_[0]->start_background();
  sim_.run_until(sec(30));
  // Each of the 2 peers misses exactly 2 updates at commit time.
  EXPECT_EQ(stats.updates_shipped, 4u);
  EXPECT_EQ(stats.invalidated, 2u);  // kUserId default: two losers
}

}  // namespace
}  // namespace idea::core
