#include "core/service.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "net/sim_transport.hpp"

namespace idea::core {
namespace {

class ServiceFixture : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kNodes = 10;

  void SetUp() override {
    transport_ = std::make_unique<net::SimTransport>(sim_, latency_);
    for (NodeId n = 0; n < kNodes; ++n) {
      services_.push_back(
          std::make_unique<IdeaService>(n, *transport_, 900 + n));
    }
  }

  IdeaConfig file_config() {
    IdeaConfig cfg;
    cfg.ransub.nodes = kNodes;
    cfg.gossip.nodes = kNodes;
    cfg.two_layer.all_nodes = kNodes;
    cfg.maxima = vv::TripleMaxima{10, 10, 10};
    cfg.controller.mode = AdaptiveMode::kHintBased;
    cfg.controller.hint = 0.9;
    return cfg;
  }

  void open_everywhere(FileId file) {
    for (auto& s : services_) s->open(file, file_config()).start();
  }

  sim::Simulator sim_;
  sim::ConstantLatency latency_{msec(25)};
  std::unique_ptr<net::SimTransport> transport_;
  std::vector<std::unique_ptr<IdeaService>> services_;
};

TEST_F(ServiceFixture, OpenIsIdempotent) {
  IdeaNode& a = services_[0]->open(1, file_config());
  IdeaNode& b = services_[0]->open(1, file_config());
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(services_[0]->open_files(), 1u);
}

TEST_F(ServiceFixture, FindAndClose) {
  services_[0]->open(1, file_config());
  EXPECT_NE(services_[0]->find(1), nullptr);
  EXPECT_EQ(services_[0]->find(2), nullptr);
  EXPECT_TRUE(services_[0]->close(1));
  EXPECT_EQ(services_[0]->find(1), nullptr);
}

TEST_F(ServiceFixture, CloseOfUnknownFileIsANoOp) {
  EXPECT_FALSE(services_[0]->close(42));
  services_[0]->open(1, file_config());
  EXPECT_FALSE(services_[0]->close(2));   // never opened
  EXPECT_TRUE(services_[0]->close(1));
  EXPECT_FALSE(services_[0]->close(1));   // already closed
  EXPECT_EQ(services_[0]->open_files(), 0u);
}

TEST_F(ServiceFixture, OpenKeepsFirstConfig) {
  IdeaConfig strict = file_config();
  strict.controller.hint = 0.95;
  IdeaConfig lax = file_config();
  lax.controller.hint = 0.5;
  IdeaNode& first = services_[0]->open(1, strict);
  IdeaNode& again = services_[0]->open(1, lax);
  EXPECT_EQ(&first, &again);
  // Keep-first semantics: the second config is ignored outright.
  EXPECT_DOUBLE_EQ(again.controller().hint(), 0.95);
}

TEST_F(ServiceFixture, SingleFileProtocolWorksThroughService) {
  open_everywhere(1);
  // Both writes land at t=0, so staleness stays flat; the numerical gap is
  // what drives the level below the hint.
  services_[2]->find(1)->write("a", 1.0);
  services_[7]->find(1)->write("b", 9.0);
  sim_.run_until(sec(40));
  // Hint control resolved the conflict through the routed endpoint.
  EXPECT_EQ(services_[2]->find(1)->store().content_digest(),
            services_[7]->find(1)->store().content_digest());
}

TEST_F(ServiceFixture, FilesHaveIndependentTopLayers) {
  open_everywhere(1);
  open_everywhere(2);
  // Writers of file 1: nodes 2 and 7.  Writers of file 2: nodes 4 and 9.
  for (int i = 0; i < 4; ++i) {
    services_[2]->find(1)->write("f1", 0.1);
    services_[7]->find(1)->write("f1", 0.1);
    services_[4]->find(2)->write("f2", 0.1);
    services_[9]->find(2)->write("f2", 0.1);
    sim_.run_until(sim_.now() + sec(5));
  }
  sim_.run_until(sim_.now() + sec(10));
  EXPECT_EQ(services_[0]->find(1)->top_layer(),
            (std::vector<NodeId>{2, 7}));
  EXPECT_EQ(services_[0]->find(2)->top_layer(),
            (std::vector<NodeId>{4, 9}));
}

TEST_F(ServiceFixture, ConflictInOneFileDoesNotTouchAnother) {
  open_everywhere(1);
  open_everywhere(2);
  // File 2 is quiet and consistent; file 1 has a conflict.  Warm file 1's
  // writers first so its top layer exists before the conflicting writes.
  services_[4]->find(2)->write("quiet", 1.0);
  services_[2]->find(1)->write("warm", 0.0);
  services_[7]->find(1)->write("warm", 0.0);
  sim_.run_until(sim_.now() + sec(10));
  // The hint controller resolves the dip quickly; capture it via listener.
  double min_level = 1.0;
  services_[2]->find(1)->set_level_listener(
      [&](const LevelSample& s) { min_level = std::min(min_level, s.level); });
  services_[2]->find(1)->write("a", 1.0);
  services_[7]->find(1)->write("b", 8.0);
  sim_.run_until(sim_.now() + sec(3));
  EXPECT_LT(min_level, 1.0);
  // File 2's store is untouched by file 1's conflict and resolution.
  const auto digest_before =
      services_[4]->find(2)->store().content_digest();
  sim_.run_until(sim_.now() + sec(20));
  EXPECT_EQ(services_[4]->find(2)->store().content_digest(), digest_before);
  EXPECT_EQ(services_[4]->find(2)->store().update_count(), 1u);
}

TEST_F(ServiceFixture, PerFileConfigIndependent) {
  IdeaConfig strict = file_config();
  strict.controller.hint = 0.99;
  IdeaConfig lax = file_config();
  lax.controller.hint = 0.5;
  IdeaNode& f1 = services_[0]->open(1, strict);
  IdeaNode& f2 = services_[0]->open(2, lax);
  EXPECT_DOUBLE_EQ(f1.controller().hint(), 0.99);
  EXPECT_DOUBLE_EQ(f2.controller().hint(), 0.5);
  f1.set_resolution(1);
  f2.set_resolution(3);
  EXPECT_EQ(f1.config().resolution.policy.policy,
            ResolutionPolicy::kInvalidateBoth);
  EXPECT_EQ(f2.config().resolution.policy.policy,
            ResolutionPolicy::kPriority);
}

TEST_F(ServiceFixture, MessagesForUnopenedFilesDropped) {
  open_everywhere(1);
  // Node 0 additionally opens file 3 that nobody else has.
  services_[0]->open(3, file_config()).start();
  services_[0]->find(3)->write("lonely", 1.0);
  sim_.run_until(sim_.now() + sec(20));  // must not crash anywhere
  EXPECT_EQ(services_[0]->find(3)->store().update_count(), 1u);
}

}  // namespace
}  // namespace idea::core
